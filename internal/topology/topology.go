// Package topology models interconnection structure: which cells are
// adjacent, the links ("intervals" in the paper's §2.3) between them,
// and how messages are routed from sender to receiver.
//
// The paper presents everything on 1-dimensional arrays but states the
// results apply to any dimensionality and interconnection topology.
// This package provides linear arrays, rings, 2-D meshes and tori with
// deterministic XY routing, and arbitrary graphs with BFS shortest-path
// routing.
package topology

import (
	"fmt"

	"systolic/internal/model"
)

// LinkID identifies an undirected link between two adjacent cells.
// Both directions of traffic cross the same link and, in the paper's
// model, draw queues from the same fixed set ("the direction of the
// queue can be reset", §2.3).
type LinkID int

// Link is an undirected edge between adjacent cells A and B (A < B).
type Link struct {
	ID   LinkID
	A, B model.CellID
}

// Hop is one directed step of a route: a message's words traverse Link
// from From to To.
type Hop struct {
	Link LinkID
	From model.CellID
	To   model.CellID
}

// Topology exposes the structure the deadlock machinery needs: links
// and a deterministic route for every (sender, receiver) pair.
type Topology interface {
	// NumCells returns the number of cells the topology connects.
	NumCells() int
	// Links returns all links. The slice must not be modified.
	Links() []Link
	// Route returns the deterministic sequence of hops a message takes
	// from sender to receiver. It fails if no path exists or the cells
	// are out of range.
	Route(from, to model.CellID) ([]Hop, error)
	// Name returns a human-readable description.
	Name() string
}

// graph is the shared implementation: adjacency plus a routing policy.
type graph struct {
	name    string
	n       int
	links   []Link
	linkAt  map[[2]model.CellID]LinkID
	routeFn func(g *graph, from, to model.CellID) ([]Hop, error)
}

func (g *graph) NumCells() int { return g.n }
func (g *graph) Links() []Link { return g.links }
func (g *graph) Name() string  { return g.name }

func (g *graph) addLink(a, b model.CellID) {
	if a > b {
		a, b = b, a
	}
	key := [2]model.CellID{a, b}
	if _, dup := g.linkAt[key]; dup {
		return
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b})
	g.linkAt[key] = id
}

// linkBetween returns the link joining a and b, if adjacent.
func (g *graph) linkBetween(a, b model.CellID) (LinkID, bool) {
	if a > b {
		a, b = b, a
	}
	id, ok := g.linkAt[[2]model.CellID{a, b}]
	return id, ok
}

func (g *graph) Route(from, to model.CellID) ([]Hop, error) {
	if err := g.check(from); err != nil {
		return nil, err
	}
	if err := g.check(to); err != nil {
		return nil, err
	}
	if from == to {
		return nil, fmt.Errorf("topology: route from cell %d to itself", from)
	}
	return g.routeFn(g, from, to)
}

func (g *graph) check(c model.CellID) error {
	if int(c) < 0 || int(c) >= g.n {
		return fmt.Errorf("topology: cell %d out of range [0,%d)", c, g.n)
	}
	return nil
}

// hopsAlong converts a cell path into hops, validating adjacency.
func (g *graph) hopsAlong(path []model.CellID) ([]Hop, error) {
	hops := make([]Hop, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		id, ok := g.linkBetween(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("topology: cells %d and %d not adjacent", path[i], path[i+1])
		}
		hops = append(hops, Hop{Link: id, From: path[i], To: path[i+1]})
	}
	return hops, nil
}

// Linear returns a 1-D array of n cells 0—1—…—n-1. Minimum-length
// routes are the only routes, so the intervals a message crosses are
// completely determined by its endpoints (§2.3).
func Linear(n int) Topology {
	g := &graph{name: fmt.Sprintf("linear(%d)", n), n: n, linkAt: make(map[[2]model.CellID]LinkID)}
	for i := 0; i+1 < n; i++ {
		g.addLink(model.CellID(i), model.CellID(i+1))
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		step := model.CellID(1)
		if to < from {
			step = -1
		}
		path := []model.CellID{from}
		for c := from; c != to; {
			c += step
			path = append(path, c)
		}
		return g.hopsAlong(path)
	}
	return g
}

// Ring returns a ring of n cells; routes take the shorter arc,
// breaking ties clockwise (increasing cell id).
func Ring(n int) Topology {
	g := &graph{name: fmt.Sprintf("ring(%d)", n), n: n, linkAt: make(map[[2]model.CellID]LinkID)}
	for i := 0; i < n; i++ {
		g.addLink(model.CellID(i), model.CellID((i+1)%n))
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		cw := (int(to) - int(from) + n) % n
		ccw := n - cw
		step := 1
		if ccw < cw {
			step = -1
		}
		path := []model.CellID{from}
		for c := int(from); model.CellID(c) != to; {
			c = (c + step + n) % n
			path = append(path, model.CellID(c))
		}
		return g.hopsAlong(path)
	}
	return g
}

// Mesh2D returns a rows×cols mesh with deterministic XY (row-first)
// dimension-ordered routing. Cell (r,c) has id r*cols+c.
func Mesh2D(rows, cols int) Topology {
	g := &graph{name: fmt.Sprintf("mesh(%dx%d)", rows, cols), n: rows * cols, linkAt: make(map[[2]model.CellID]LinkID)}
	id := func(r, c int) model.CellID { return model.CellID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.addLink(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.addLink(id(r, c), id(r+1, c))
			}
		}
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		fr, fc := int(from)/cols, int(from)%cols
		tr, tc := int(to)/cols, int(to)%cols
		path := []model.CellID{from}
		r, c := fr, fc
		for c != tc { // X first
			if c < tc {
				c++
			} else {
				c--
			}
			path = append(path, id(r, c))
		}
		for r != tr { // then Y
			if r < tr {
				r++
			} else {
				r--
			}
			path = append(path, id(r, c))
		}
		return g.hopsAlong(path)
	}
	return g
}

// Graph returns an arbitrary topology from an explicit edge list, with
// BFS shortest-path routing (ties broken toward lower-id neighbors, so
// routes are deterministic).
func Graph(n int, edges [][2]model.CellID) Topology {
	g := &graph{name: fmt.Sprintf("graph(%d cells, %d edges)", n, len(edges)), n: n, linkAt: make(map[[2]model.CellID]LinkID)}
	for _, e := range edges {
		g.addLink(e[0], e[1])
	}
	adj := make([][]model.CellID, n)
	for _, l := range g.links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		prev := make([]model.CellID, n)
		seen := make([]bool, n)
		for i := range prev {
			prev[i] = -1
		}
		queue := []model.CellID{from}
		seen[from] = true
		for len(queue) > 0 && !seen[to] {
			c := queue[0]
			queue = queue[1:]
			for _, nb := range adj[c] {
				if !seen[nb] {
					seen[nb] = true
					prev[nb] = c
					queue = append(queue, nb)
				}
			}
		}
		if !seen[to] {
			return nil, fmt.Errorf("topology: no path from cell %d to cell %d", from, to)
		}
		var rev []model.CellID
		for c := to; c != -1; c = prev[c] {
			rev = append(rev, c)
			if c == from {
				break
			}
		}
		path := make([]model.CellID, len(rev))
		for i, c := range rev {
			path[len(rev)-1-i] = c
		}
		return g.hopsAlong(path)
	}
	return g
}

// Routes computes the route of every message of p over t. The result
// is indexed by MessageID.
func Routes(p *model.Program, t Topology) ([][]Hop, error) {
	if t == nil {
		return nil, fmt.Errorf("topology: nil topology")
	}
	if p.NumCells() > t.NumCells() {
		return nil, fmt.Errorf("topology: program has %d cells but %s has only %d", p.NumCells(), t.Name(), t.NumCells())
	}
	routes := make([][]Hop, p.NumMessages())
	for _, m := range p.Messages() {
		r, err := t.Route(m.Sender, m.Receiver)
		if err != nil {
			return nil, fmt.Errorf("topology: message %s: %w", m.Name, err)
		}
		routes[m.ID] = r
	}
	return routes, nil
}

// Competing groups messages by the links they cross: the result maps
// each link to the ids of all messages whose route includes it.
// Messages crossing the same interval are "competing" (§2.3) and may
// have to share that link's queues.
func Competing(routes [][]Hop) map[LinkID][]model.MessageID {
	out := make(map[LinkID][]model.MessageID)
	for id, route := range routes {
		for _, h := range route {
			out[h.Link] = append(out[h.Link], model.MessageID(id))
		}
	}
	return out
}

// CompetingDirectional is Competing restricted to one direction: the
// key includes the hop direction, matching the paper's definition of
// competing messages ("cross the same interval in the same direction").
type DirectedLink struct {
	Link LinkID
	From model.CellID
}

// CompetingByDirection groups message ids by (link, direction).
func CompetingByDirection(routes [][]Hop) map[DirectedLink][]model.MessageID {
	out := make(map[DirectedLink][]model.MessageID)
	for id, route := range routes {
		for _, h := range route {
			k := DirectedLink{Link: h.Link, From: h.From}
			out[k] = append(out[k], model.MessageID(id))
		}
	}
	return out
}
