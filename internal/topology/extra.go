package topology

import (
	"fmt"

	"systolic/internal/model"
)

// Torus2D returns a rows×cols 2-D torus (mesh plus wraparound links)
// with dimension-ordered routing that takes the shorter way around
// each dimension, ties broken toward increasing coordinates.
func Torus2D(rows, cols int) Topology {
	g := &graph{name: fmt.Sprintf("torus(%dx%d)", rows, cols), n: rows * cols, linkAt: make(map[[2]model.CellID]LinkID)}
	id := func(r, c int) model.CellID { return model.CellID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				g.addLink(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 1 {
				g.addLink(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	step := func(cur, want, size int) int {
		if cur == want {
			return cur
		}
		fwd := (want - cur + size) % size
		bwd := size - fwd
		if fwd <= bwd {
			return (cur + 1) % size
		}
		return (cur - 1 + size) % size
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		fr, fc := int(from)/cols, int(from)%cols
		tr, tc := int(to)/cols, int(to)%cols
		path := []model.CellID{from}
		r, c := fr, fc
		for c != tc { // X dimension first
			c = step(c, tc, cols)
			path = append(path, id(r, c))
		}
		for r != tr { // then Y
			r = step(r, tr, rows)
			path = append(path, id(r, c))
		}
		return g.hopsAlong(path)
	}
	return g
}

// Hypercube returns a 2^dim-cell hypercube with e-cube (dimension
// ordered, lowest differing bit first) routing — the topology of the
// Cosmic Cube machines the paper contrasts with (§1, refs 6 and 11).
func Hypercube(dim int) Topology {
	n := 1 << dim
	g := &graph{name: fmt.Sprintf("hypercube(%d)", dim), n: n, linkAt: make(map[[2]model.CellID]LinkID)}
	for c := 0; c < n; c++ {
		for d := 0; d < dim; d++ {
			g.addLink(model.CellID(c), model.CellID(c^(1<<d)))
		}
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		path := []model.CellID{from}
		cur := int(from)
		for cur != int(to) {
			diff := cur ^ int(to)
			bit := diff & -diff // lowest set bit
			cur ^= bit
			path = append(path, model.CellID(cur))
		}
		return g.hopsAlong(path)
	}
	return g
}

// Star returns a hub-and-spoke topology: cell 0 is the hub, cells
// 1..n-1 are leaves; leaf-to-leaf routes pass through the hub.
func Star(n int) Topology {
	g := &graph{name: fmt.Sprintf("star(%d)", n), n: n, linkAt: make(map[[2]model.CellID]LinkID)}
	for c := 1; c < n; c++ {
		g.addLink(0, model.CellID(c))
	}
	g.routeFn = func(g *graph, from, to model.CellID) ([]Hop, error) {
		if from == 0 || to == 0 {
			return g.hopsAlong([]model.CellID{from, to})
		}
		return g.hopsAlong([]model.CellID{from, 0, to})
	}
	return g
}
