package topology

import (
	"testing"
	"testing/quick"

	"systolic/internal/model"
)

func TestTorusWraparound(t *testing.T) {
	tor := Torus2D(4, 4)
	// 0 → 3 takes the wraparound (1 hop), not 3 hops across.
	hops, err := tor.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("wrap route length %d, want 1", len(hops))
	}
	// (0,0) → (2,2): 2+2 = 4 hops (no shorter wrap at distance n/2;
	// tie goes forward).
	hops, err = tor.Route(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 4 {
		t.Fatalf("route length %d, want 4", len(hops))
	}
}

func TestTorusLinkCount(t *testing.T) {
	// 4x4 torus: 2 links per cell dimension pair = 2*16 = 32.
	if got := len(Torus2D(4, 4).Links()); got != 32 {
		t.Fatalf("links=%d, want 32", got)
	}
	// Degenerate 1x4 torus: a ring of 4.
	if got := len(Torus2D(1, 4).Links()); got != 4 {
		t.Fatalf("1x4 torus links=%d, want 4", got)
	}
}

func TestQuickTorusRouteIsShortest(t *testing.T) {
	rows, cols := 5, 6
	tor := Torus2D(rows, cols)
	dist := func(a, b, size int) int {
		d := (b - a + size) % size
		if size-d < d {
			return size - d
		}
		return d
	}
	f := func(a, b uint8) bool {
		from := int(a) % (rows * cols)
		to := int(b) % (rows * cols)
		if from == to {
			return true
		}
		hops, err := tor.Route(model.CellID(from), model.CellID(to))
		if err != nil {
			return false
		}
		want := dist(from%cols, to%cols, cols) + dist(from/cols, to/cols, rows)
		return len(hops) == want && hops[len(hops)-1].To == model.CellID(to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeECubeRouting(t *testing.T) {
	h := Hypercube(3)
	if h.NumCells() != 8 {
		t.Fatalf("cells=%d", h.NumCells())
	}
	// 8 cells × 3 links / 2 = 12 links.
	if got := len(h.Links()); got != 12 {
		t.Fatalf("links=%d, want 12", got)
	}
	// 000 → 111: 3 hops flipping bits low to high: 001, 011, 111.
	hops, err := h.Route(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []model.CellID{1, 3, 7}
	if len(hops) != 3 {
		t.Fatalf("route %v", hops)
	}
	for i, h := range hops {
		if h.To != wantPath[i] {
			t.Fatalf("hop %d to %d, want %d", i, h.To, wantPath[i])
		}
	}
}

func TestQuickHypercubeRouteLengthIsHamming(t *testing.T) {
	h := Hypercube(4)
	f := func(a, b uint8) bool {
		from := int(a) % 16
		to := int(b) % 16
		if from == to {
			return true
		}
		hops, err := h.Route(model.CellID(from), model.CellID(to))
		if err != nil {
			return false
		}
		ham := 0
		for d := from ^ to; d != 0; d >>= 1 {
			ham += d & 1
		}
		return len(hops) == ham
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStarRouting(t *testing.T) {
	s := Star(5)
	if got := len(s.Links()); got != 4 {
		t.Fatalf("links=%d, want 4", got)
	}
	hops, err := s.Route(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 || hops[0].To != 0 || hops[1].To != 3 {
		t.Fatalf("leaf-leaf route %v", hops)
	}
	hops, err = s.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("hub route %v", hops)
	}
}
