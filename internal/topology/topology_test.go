package topology

import (
	"testing"
	"testing/quick"

	"systolic/internal/model"
)

func TestLinearLinks(t *testing.T) {
	lin := Linear(4)
	if lin.NumCells() != 4 {
		t.Fatalf("NumCells=%d", lin.NumCells())
	}
	links := lin.Links()
	if len(links) != 3 {
		t.Fatalf("links=%d, want 3", len(links))
	}
	for i, l := range links {
		if int(l.A) != i || int(l.B) != i+1 {
			t.Errorf("link %d joins %d-%d", i, l.A, l.B)
		}
	}
}

func TestLinearRouteForwardAndBack(t *testing.T) {
	lin := Linear(5)
	fwd, err := lin.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) != 3 || fwd[0].From != 0 || fwd[2].To != 3 {
		t.Fatalf("forward route %v", fwd)
	}
	back, err := lin.Route(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].From != 4 || back[2].To != 1 {
		t.Fatalf("backward route %v", back)
	}
	// Same undirected links, opposite direction.
	if back[0].Link != fwd[2].Link && back[2].Link != fwd[0].Link {
		t.Log("link ids:", fwd, back) // informational; ids depend on construction order
	}
}

func TestRouteSelfFails(t *testing.T) {
	if _, err := Linear(3).Route(1, 1); err == nil {
		t.Fatal("route to self succeeded")
	}
}

func TestRouteOutOfRangeFails(t *testing.T) {
	if _, err := Linear(3).Route(0, 7); err == nil {
		t.Fatal("out-of-range route succeeded")
	}
	if _, err := Linear(3).Route(-1, 2); err == nil {
		t.Fatal("negative route succeeded")
	}
}

func TestRingShorterArc(t *testing.T) {
	r := Ring(6)
	if len(r.Links()) != 6 {
		t.Fatalf("ring(6) has %d links", len(r.Links()))
	}
	hops, err := r.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 || hops[0].To != 1 {
		t.Fatalf("cw route %v", hops)
	}
	hops, err = r.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].To != 5 {
		t.Fatalf("ccw route %v", hops)
	}
	// Tie (distance 3 both ways) goes clockwise.
	hops, err = r.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 || hops[0].To != 1 {
		t.Fatalf("tie route %v", hops)
	}
}

func TestMeshXYRouting(t *testing.T) {
	m := Mesh2D(3, 4)
	if m.NumCells() != 12 {
		t.Fatalf("cells=%d", m.NumCells())
	}
	// (0,0)=0 to (2,3)=11: X first (3 east hops), then Y (2 south).
	hops, err := m.Route(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 5 {
		t.Fatalf("route length %d, want 5", len(hops))
	}
	wantPath := []model.CellID{1, 2, 3, 7, 11}
	for i, h := range hops {
		if h.To != wantPath[i] {
			t.Fatalf("hop %d to %d, want %d (XY order violated)", i, h.To, wantPath[i])
		}
	}
}

func TestMeshLinkCount(t *testing.T) {
	m := Mesh2D(3, 4)
	// 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
	if got := len(m.Links()); got != 17 {
		t.Fatalf("mesh(3x4) links=%d, want 17", got)
	}
}

func TestGraphBFSRouting(t *testing.T) {
	// A square with a diagonal: 0-1, 1-2, 2-3, 3-0, 0-2.
	g := Graph(4, [][2]model.CellID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	hops, err := g.Route(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 {
		t.Fatalf("route 1→3 length %d, want 2", len(hops))
	}
	// Direct edge wins.
	hops, err = g.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("route 0→2 length %d, want 1", len(hops))
	}
}

func TestGraphDisconnectedFails(t *testing.T) {
	g := Graph(4, [][2]model.CellID{{0, 1}, {2, 3}})
	if _, err := g.Route(0, 3); err == nil {
		t.Fatal("route across components succeeded")
	}
}

func TestGraphDuplicateEdgesCollapsed(t *testing.T) {
	g := Graph(3, [][2]model.CellID{{0, 1}, {1, 0}, {1, 2}})
	if len(g.Links()) != 2 {
		t.Fatalf("links=%d, want 2 (duplicate edge kept)", len(g.Links()))
	}
}

func buildProgram(t *testing.T) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	cs := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cs[0], cs[3], 1) // 3 hops on linear
	bb := b.DeclareMessage("B", cs[1], cs[2], 1)
	b.Write(cs[0], a)
	b.Write(cs[1], bb)
	b.Read(cs[2], bb)
	b.Read(cs[3], a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRoutesAndCompeting(t *testing.T) {
	p := buildProgram(t)
	routes, err := Routes(p, Linear(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes[0]) != 3 || len(routes[1]) != 1 {
		t.Fatalf("route lengths %d,%d", len(routes[0]), len(routes[1]))
	}
	comp := Competing(routes)
	shared := routes[1][0].Link // C2-C3 carries both A and B
	if len(comp[shared]) != 2 {
		t.Fatalf("shared link competing=%d, want 2", len(comp[shared]))
	}
	dir := CompetingByDirection(routes)
	if len(dir[DirectedLink{Link: shared, From: 1}]) != 2 {
		t.Fatalf("directional competing wrong: %v", dir)
	}
}

func TestRoutesTooManyProgramCells(t *testing.T) {
	p := buildProgram(t)
	if _, err := Routes(p, Linear(3)); err == nil {
		t.Fatal("program with more cells than topology routed")
	}
}

func TestQuickLinearRouteLength(t *testing.T) {
	f := func(a, b uint8) bool {
		n := 12
		from := model.CellID(int(a) % n)
		to := model.CellID(int(b) % n)
		if from == to {
			return true
		}
		hops, err := Linear(n).Route(from, to)
		if err != nil {
			return false
		}
		want := int(from) - int(to)
		if want < 0 {
			want = -want
		}
		if len(hops) != want {
			return false
		}
		// Hops chain correctly.
		cur := from
		for _, h := range hops {
			if h.From != cur {
				return false
			}
			cur = h.To
		}
		return cur == to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRingRouteAtMostHalf(t *testing.T) {
	f := func(a, b uint8) bool {
		n := 9
		from := model.CellID(int(a) % n)
		to := model.CellID(int(b) % n)
		if from == to {
			return true
		}
		hops, err := Ring(n).Route(from, to)
		if err != nil {
			return false
		}
		return len(hops) <= n/2+1 && hops[len(hops)-1].To == to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeshRouteLengthIsManhattan(t *testing.T) {
	rows, cols := 4, 5
	m := Mesh2D(rows, cols)
	f := func(a, b uint8) bool {
		from := int(a) % (rows * cols)
		to := int(b) % (rows * cols)
		if from == to {
			return true
		}
		hops, err := m.Route(model.CellID(from), model.CellID(to))
		if err != nil {
			return false
		}
		fr, fc := from/cols, from%cols
		tr, tc := to/cols, to%cols
		manhattan := abs(fr-tr) + abs(fc-tc)
		return len(hops) == manhattan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		topo Topology
		want string
	}{
		{Linear(3), "linear(3)"},
		{Ring(5), "ring(5)"},
		{Mesh2D(2, 3), "mesh(2x3)"},
	} {
		if tc.topo.Name() != tc.want {
			t.Errorf("Name=%q want %q", tc.topo.Name(), tc.want)
		}
	}
}
