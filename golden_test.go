// Golden-trace regression tests for the §4 queue-induced deadlocks of
// Figs 8 and 9: not just "deadlocked == true" but the exact deadlock
// cycle, the exact blocked-cell set (cell, op, op index, reason), and
// the words delivered before the stall. Any simulator or policy change
// that shifts these traces must be looked at, not waved through.
package systolic_test

import (
	"testing"

	"systolic"
)

// goldenBlock is one expected entry of the blocked-cell report.
type goldenBlock struct {
	cell   systolic.CellID
	op     string // rendered, e.g. "W(B)"
	opIdx  int
	reason string
}

func assertDeadlockTrace(t *testing.T, w *systolic.Workload, policy systolic.PolicyKind,
	wantCycle int, wantBlocked []goldenBlock, wantReceived map[string][]systolic.Word) {
	t.Helper()
	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MinQueuesDynamic != 2 {
		t.Fatalf("MinQueuesDynamic = %d, want 2 (related messages share a label)", a.MinQueuesDynamic)
	}
	res, err := systolic.Execute(a, systolic.ExecOptions{
		Policy: policy, QueuesPerLink: 1, Capacity: 1, Force: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("outcome = %s, want deadlocked", res.Outcome())
	}
	if res.Cycles != wantCycle {
		t.Errorf("deadlock cycle = %d, want %d", res.Cycles, wantCycle)
	}
	if len(res.Blocked) != len(wantBlocked) {
		t.Fatalf("blocked set has %d cells, want %d: %+v", len(res.Blocked), len(wantBlocked), res.Blocked)
	}
	for i, want := range wantBlocked {
		got := res.Blocked[i]
		if got.Cell != want.cell {
			t.Errorf("blocked[%d].Cell = %d, want %d", i, got.Cell, want.cell)
		}
		if s := w.Program.OpString(got.Op); s != want.op {
			t.Errorf("blocked[%d].Op = %s, want %s", i, s, want.op)
		}
		if got.OpIdx != want.opIdx {
			t.Errorf("blocked[%d].OpIdx = %d, want %d", i, got.OpIdx, want.opIdx)
		}
		if got.Reason != want.reason {
			t.Errorf("blocked[%d].Reason = %q, want %q", i, got.Reason, want.reason)
		}
	}
	for name, want := range wantReceived {
		m, ok := w.Program.MessageByName(name)
		if !ok {
			t.Fatalf("no message %q", name)
		}
		got := res.Received[m.ID]
		if len(got) != len(want) {
			t.Errorf("received %s = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("received %s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}

	// The same analysis at the Theorem 1 budget (2 queues) completes —
	// the deadlock above is purely queue-induced.
	ok, err := systolic.Execute(a, systolic.ExecOptions{
		Policy: policy, QueuesPerLink: 2, Capacity: 1, Force: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Completed {
		t.Errorf("with 2 queues/link: %s, want completed", ok.Outcome())
	}
}

// TestGoldenFig8Deadlock: C3 reads A and B interleaved, so the two
// messages are related and share a label; with a single queue on each
// link the compatible policy cannot grant the size-2 equal-label
// group at all and the system stalls before any word moves.
func TestGoldenFig8Deadlock(t *testing.T) {
	assertDeadlockTrace(t, systolic.Fig8Workload(), systolic.DynamicCompatible,
		1,
		[]goldenBlock{
			{0, "W(B)", 1, "queue for B is full (capacity 1) and the downstream never drains"},
			{1, "W(A)", 0, "no queue bound for A on its first link"},
			{2, "R(A)", 0, "no queue bound for A on its last link"},
		},
		map[string][]systolic.Word{"A": nil, "B": nil},
	)
}

// TestGoldenFig8FCFS: the label-oblivious baseline makes one cycle of
// progress (A's first word reaches C3) before B — which C3 must read
// next — finds A camped on the C2–C3 link's only queue: the exact
// §4 story.
func TestGoldenFig8FCFS(t *testing.T) {
	assertDeadlockTrace(t, systolic.Fig8Workload(), systolic.NaiveFCFS,
		2,
		[]goldenBlock{
			{0, "W(B)", 1, "queue for B is full (capacity 1) and the downstream never drains"},
			{1, "W(A)", 2, "queue for A is full (capacity 1) and the downstream never drains"},
			{2, "R(B)", 1, "no queue bound for B on its last link"},
		},
		map[string][]systolic.Word{"A": {0}, "B": nil},
	)
}

// TestGoldenFig9Deadlock is the write-side mirror: C1 writes A and B
// interleaved, the related pair needs two queues on C1–C2, one queue
// stalls the program at once.
func TestGoldenFig9Deadlock(t *testing.T) {
	assertDeadlockTrace(t, systolic.Fig9Workload(), systolic.DynamicCompatible,
		1,
		[]goldenBlock{
			{0, "W(A)", 0, "no queue bound for A on its first link"},
			{1, "R(A)", 0, "no queue bound for A on its last link"},
			{2, "R(B)", 0, "no word of B has arrived"},
		},
		map[string][]systolic.Word{"A": nil, "B": nil},
	)
}

// TestGoldenFig9FCFS: FCFS moves A's first word, then B cannot obtain
// the C1–C2 queue A still holds while C1 has already advanced to
// W(B).
func TestGoldenFig9FCFS(t *testing.T) {
	assertDeadlockTrace(t, systolic.Fig9Workload(), systolic.NaiveFCFS,
		2,
		[]goldenBlock{
			{0, "W(B)", 1, "no queue bound for B on its first link"},
			{1, "R(A)", 1, "no word of A has arrived"},
			{2, "R(B)", 0, "no queue bound for B on its last link"},
		},
		map[string][]systolic.Word{"A": {0}, "B": nil},
	)
}

// TestGoldenStaticRefusal: the static §7.1 policy cannot even set up
// with one queue per link on Fig 8/9 — each link carries two
// competing messages and static assignment is one queue per message
// for its whole life.
func TestGoldenStaticRefusal(t *testing.T) {
	for _, w := range []*systolic.Workload{systolic.Fig8Workload(), systolic.Fig9Workload()} {
		a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = systolic.Execute(a, systolic.ExecOptions{
			Policy: systolic.StaticAssignment, QueuesPerLink: 1, Capacity: 1, Force: true,
		})
		if err == nil {
			t.Errorf("%s: static policy with 1 queue/link: want setup refusal", w.Name)
		}
	}
}
