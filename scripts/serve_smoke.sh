#!/usr/bin/env sh
# Serve smoke test: boot the daemon, drive /v1/run twice with the same
# program, and assert the second request is a cache hit via /v1/stats.
# A second round boots with -max-concurrency 1 -queue-wait -1 and
# asserts the admission gate sheds a concurrent run with 429 +
# Retry-After instead of queueing it. CI runs this on every push; it
# is also runnable locally:
#
#   sh scripts/serve_smoke.sh
#
# Requires: go, curl. No jq dependency — assertions are grep-based.
set -eu

ADDR="127.0.0.1:18080"
LOG="$(mktemp)"
BODY="$(mktemp)"
PROG="$(mktemp)"
SLOW="$(mktemp)"
SHEDBODY="$(mktemp)"
HDRS="$(mktemp)"

cleanup() {
    [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -f "$LOG" "$BODY" "$PROG" "$SLOW" "$SLOW.2" "$SHEDBODY" \
        "$SHEDBODY.c1" "$SHEDBODY.c2" "$HDRS" "$HDRS.1" "$HDRS.2"
}
trap cleanup EXIT INT TERM

# wait_up polls /v1/stats until the daemon answers.
wait_up() {
    i=0
    until curl -fsS "http://$ADDR/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "FAIL: daemon never came up; log:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# json_body wraps a DSL file into {"program": "..."} without jq.
json_body() {
    printf '{"program": "'
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$1" | awk '{printf "%s\\n", $0}'
    printf '"}'
}

echo "==> building sysdl"
go build -o /tmp/sysdl-smoke ./cmd/sysdl

echo "==> starting sysdl serve on $ADDR"
/tmp/sysdl-smoke serve -addr "$ADDR" >"$LOG" 2>&1 &
SERVE_PID=$!

wait_up

json_body examples/dsl/fig7.sys >"$BODY"

echo "==> first /v1/run (expect cached:false, outcome completed)"
FIRST="$(curl -fsS -X POST --data-binary @"$BODY" "http://$ADDR/v1/run")"
echo "$FIRST"
echo "$FIRST" | grep -q '"cached":false' || { echo "FAIL: first request claims a cache hit" >&2; exit 1; }
echo "$FIRST" | grep -q '"outcome":"completed"' || { echo "FAIL: first run did not complete" >&2; exit 1; }

echo "==> second identical /v1/run (expect cached:true)"
SECOND="$(curl -fsS -X POST --data-binary @"$BODY" "http://$ADDR/v1/run")"
echo "$SECOND"
echo "$SECOND" | grep -q '"cached":true' || { echo "FAIL: second identical request was not a cache hit" >&2; exit 1; }

echo "==> /v1/stats (expect cacheHits:1, cacheMisses:1)"
STATS="$(curl -fsS "http://$ADDR/v1/stats")"
echo "$STATS"
echo "$STATS" | grep -q '"cacheHits":1' || { echo "FAIL: stats do not show exactly one hit" >&2; exit 1; }
echo "$STATS" | grep -q '"cacheMisses":1' || { echo "FAIL: stats do not show exactly one miss" >&2; exit 1; }

echo "==> result retention"
ID="$(echo "$FIRST" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
curl -fsS "http://$ADDR/v1/results/$ID" | grep -q '"outcome":"completed"' \
    || { echo "FAIL: GET /v1/results/$ID did not replay the run" >&2; exit 1; }

echo "==> graceful shutdown"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero on SIGINT" >&2; exit 1; }
SERVE_PID=""
grep -q "shut down" "$LOG" || { echo "FAIL: no shutdown line in log" >&2; exit 1; }

echo "==> admission round: -max-concurrency 1 -queue-wait -1"
# A long two-cell relay (~1s of simulation) so one run reliably holds
# the single slot while a second one arrives.
awk 'BEGIN {
    n = 600000
    printf "topology linear 2\ncell C1\ncell C2\nmessage A C1 C2 %d\n", n
    printf "code C1:"; for (i = 0; i < n; i++) printf " W(A)"; printf "\n"
    printf "code C2:"; for (i = 0; i < n; i++) printf " R(A)"; printf "\n"
}' >"$PROG"
json_body "$PROG" >"$BODY"

/tmp/sysdl-smoke serve -addr "$ADDR" -max-concurrency 1 -queue-wait -1 >"$LOG" 2>&1 &
SERVE_PID=$!
wait_up

# Fire two identical runs back-to-back. Both join the same in-flight
# compile (singleflight), unblock together, and race for the single
# run slot: exactly one must win it and complete, the other must be
# shed with 429 + Retry-After (which one wins is scheduling). Neither
# curl uses -f: one of the two answers is *supposed* to be a 429.
curl -s -o "$SLOW" -D "$HDRS.1" -w '%{http_code}' \
    -X POST --data-binary @"$BODY" "http://$ADDR/v1/run" >"$SHEDBODY.c1" &
PID1=$!
curl -s -o "$SLOW.2" -D "$HDRS.2" -w '%{http_code}' \
    -X POST --data-binary @"$BODY" "http://$ADDR/v1/run" >"$SHEDBODY.c2" &
PID2=$!
wait "$PID1" "$PID2" || true
CODE1="$(cat "$SHEDBODY.c1")"
CODE2="$(cat "$SHEDBODY.c2")"
rm -f "$SHEDBODY.c1" "$SHEDBODY.c2"
echo "   concurrent runs answered $CODE1 and $CODE2"
case "$CODE1$CODE2" in
200429) WIN="$SLOW" SHED="$SLOW.2" SHEDHDRS="$HDRS.2" ;;
429200) WIN="$SLOW.2" SHED="$SLOW" SHEDHDRS="$HDRS.1" ;;
*) echo "FAIL: expected exactly one 200 and one 429, got $CODE1/$CODE2" >&2
   cat "$SLOW" "$SLOW.2" >&2; exit 1 ;;
esac
grep -qi '^retry-after:' "$SHEDHDRS" || { echo "FAIL: 429 carried no Retry-After header" >&2; cat "$SHEDHDRS" >&2; exit 1; }
grep -q 'saturated' "$SHED" || { echo "FAIL: shed body does not name saturation" >&2; cat "$SHED" >&2; exit 1; }
grep -q '"outcome":"completed"' "$WIN" || { echo "FAIL: admitted run did not complete" >&2; cat "$WIN" >&2; exit 1; }
rm -f "$SLOW.2" "$HDRS.1" "$HDRS.2"

echo "==> stats count the shed"
STATS="$(curl -fsS "http://$ADDR/v1/stats")"
echo "$STATS"
echo "$STATS" | grep -q '"shedRequests":[1-9]' || { echo "FAIL: stats do not count the shed request" >&2; exit 1; }
echo "$STATS" | grep -q '"queueWait":0' || { echo "FAIL: -queue-wait -1 should report queueWait 0" >&2; exit 1; }

echo "==> admission round shutdown"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero on SIGINT" >&2; exit 1; }
SERVE_PID=""

echo "PASS: serve smoke"
