#!/usr/bin/env sh
# Serve smoke test: boot the daemon, drive /v1/run twice with the same
# program, and assert the second request is a cache hit via /v1/stats.
# CI runs this on every push; it is also runnable locally:
#
#   sh scripts/serve_smoke.sh
#
# Requires: go, curl. No jq dependency — assertions are grep-based.
set -eu

ADDR="127.0.0.1:18080"
LOG="$(mktemp)"
BODY="$(mktemp)"

cleanup() {
    [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -f "$LOG" "$BODY"
}
trap cleanup EXIT INT TERM

echo "==> building sysdl"
go build -o /tmp/sysdl-smoke ./cmd/sysdl

echo "==> starting sysdl serve on $ADDR"
/tmp/sysdl-smoke serve -addr "$ADDR" >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to come up.
i=0
until curl -fsS "http://$ADDR/v1/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: daemon never came up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Build the request body: {"program": "<fig7.sys>"} without jq.
{
    printf '{"program": "'
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' examples/dsl/fig7.sys | awk '{printf "%s\\n", $0}'
    printf '"}'
} >"$BODY"

echo "==> first /v1/run (expect cached:false, outcome completed)"
FIRST="$(curl -fsS -X POST --data-binary @"$BODY" "http://$ADDR/v1/run")"
echo "$FIRST"
echo "$FIRST" | grep -q '"cached":false' || { echo "FAIL: first request claims a cache hit" >&2; exit 1; }
echo "$FIRST" | grep -q '"outcome":"completed"' || { echo "FAIL: first run did not complete" >&2; exit 1; }

echo "==> second identical /v1/run (expect cached:true)"
SECOND="$(curl -fsS -X POST --data-binary @"$BODY" "http://$ADDR/v1/run")"
echo "$SECOND"
echo "$SECOND" | grep -q '"cached":true' || { echo "FAIL: second identical request was not a cache hit" >&2; exit 1; }

echo "==> /v1/stats (expect cacheHits:1, cacheMisses:1)"
STATS="$(curl -fsS "http://$ADDR/v1/stats")"
echo "$STATS"
echo "$STATS" | grep -q '"cacheHits":1' || { echo "FAIL: stats do not show exactly one hit" >&2; exit 1; }
echo "$STATS" | grep -q '"cacheMisses":1' || { echo "FAIL: stats do not show exactly one miss" >&2; exit 1; }

echo "==> result retention"
ID="$(echo "$FIRST" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
curl -fsS "http://$ADDR/v1/results/$ID" | grep -q '"outcome":"completed"' \
    || { echo "FAIL: GET /v1/results/$ID did not replay the run" >&2; exit 1; }

echo "==> graceful shutdown"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero on SIGINT" >&2; exit 1; }
SERVE_PID=""
grep -q "shut down" "$LOG" || { echo "FAIL: no shutdown line in log" >&2; exit 1; }

echo "PASS: serve smoke"
