module systolic

go 1.24
