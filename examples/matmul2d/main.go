// MatMul2D: C = A·B on a 2-D mesh — the paper's promised extension to
// higher-dimensional arrays. A-rows flow east, B-columns flow south,
// and each row's results converge on its easternmost cell through
// multi-hop, mutually competing messages that genuinely exercise the
// labeling and assignment machinery.
package main

import (
	"flag"
	"fmt"
	"log"

	"systolic"
)

func main() {
	rows := flag.Int("rows", 4, "result rows (mesh rows)")
	inner := flag.Int("inner", 5, "inner dimension")
	cols := flag.Int("cols", 4, "result cols (mesh cols)")
	flag.Parse()

	w, err := systolic.MatMul(systolic.MatMulOptions{Rows: *rows, Inner: *inner, Cols: *cols})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d cells, %d messages, %d ops\n",
		w.Name, w.Topology.Name(), w.Program.NumCells(), w.Program.NumMessages(), w.Program.TotalOps())

	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadlock-free: %v; queues/link needed (compatible): %d, (static): %d\n",
		a.DeadlockFree, a.MinQueuesDynamic, a.MinQueuesStatic)

	res, err := systolic.Execute(a, systolic.ExecOptions{
		Capacity: w.DefaultCapacity,
		Logic:    w.Logic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(systolic.RenderRun(w.Program, res))
	if err := w.CheckReceived(res.Received); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix product verified against direct computation ✓")

	// Show why naive assignment is dangerous even here: starve the
	// mesh of queues and let requests race.
	starved, err := systolic.Execute(a, systolic.ExecOptions{
		Policy: systolic.NaiveLIFO, QueuesPerLink: 1, Capacity: 1, Force: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive LIFO with 1 queue/link: %s\n", starved.Outcome())
}
