// FIR: the paper's motivating workload (Fig 2) scaled up — a k-tap
// systolic FIR filter whose outputs are verified against direct
// convolution, plus the Fig 4 crossing-off schedule for the exact
// 3-tap/2-output instance.
package main

import (
	"flag"
	"fmt"
	"log"

	"systolic"
)

func main() {
	taps := flag.Int("taps", 8, "filter taps (cells)")
	outputs := flag.Int("outputs", 32, "outputs to compute")
	flag.Parse()

	// The exact Fig 2 instance first, with its schedule.
	fig2 := systolic.Fig2Workload()
	fmt.Println("Fig 2 program (3 taps, 2 outputs):")
	fmt.Print(systolic.RenderProgram(fig2.Program))
	rounds, _ := systolic.CrossOffSchedule(fig2.Program)
	fmt.Println("\nFig 4 crossing-off schedule:")
	fmt.Print(systolic.RenderSchedule(fig2.Program, rounds))

	// Now the scaled instance.
	w, err := systolic.FIR(systolic.FIROptions{Taps: *taps, Outputs: *outputs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscaled instance: %s on %s\n", w.Name, w.Topology.Name())

	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadlock-free: %v; queues/link needed: %d\n", a.DeadlockFree, a.MinQueuesDynamic)

	res, err := systolic.Execute(a, systolic.ExecOptions{
		Capacity: w.DefaultCapacity,
		Logic:    w.Logic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(systolic.RenderRun(w.Program, res))
	if err := w.CheckReceived(res.Received); err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter outputs verified against direct convolution ✓")

	// Throughput context (Fig 1): what the memory-to-memory model
	// would cost for the same pipeline.
	rows, err := systolic.MemModelTable([]systolic.MemModelParams{
		{Cells: *taps, Words: *outputs, QueueAccess: 1, MemAccess: 4, Compute: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig 1 comparison for this shape: %s\n", rows[0])
}
