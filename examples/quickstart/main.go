// Quickstart: build a small systolic program with the public API, test
// it for deadlock-freedom, label its messages, and run it under the
// compatible queue-assignment policy.
package main

import (
	"fmt"
	"log"

	"systolic"
)

func main() {
	// A 3-cell pipeline: the host streams 4 words through two workers
	// and reads 4 results back; a 1-word control message cuts across.
	b := systolic.NewProgram()
	host := b.AddHost("Host")
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")

	in := b.DeclareMessage("IN", host, c1, 4)
	mid := b.DeclareMessage("MID", c1, c2, 4)
	out := b.DeclareMessage("OUT", c2, host, 4) // routed back across both links
	ctl := b.DeclareMessage("CTL", host, c2, 1)

	// Order matters under systolic communication: the control word
	// goes out first (C2 reads it before touching data), the host
	// primes the pipeline with two words, then drains a result for
	// every further word it injects — the same interleave as Fig 2's
	// host. Write all four IN words up front instead and the
	// crossing-off procedure rejects the program (try it).
	b.Write(host, ctl).WriteN(host, in, 2)
	for i := 0; i < 4; i++ {
		b.Read(host, out)
		if i+2 < 4 {
			b.Write(host, in)
		}
	}
	for i := 0; i < 4; i++ {
		b.Read(c1, in)
		b.Write(c1, mid)
	}
	b.Read(c2, ctl)
	for i := 0; i < 4; i++ {
		b.Read(c2, mid)
		b.Write(c2, out)
	}
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program:")
	fmt.Print(systolic.RenderProgram(p))

	// 1. Compile-time analysis: crossing-off + §6 labeling + queue
	//    requirements (Theorem 1 assumption (ii)).
	a, err := systolic.Analyze(p, systolic.LinearArray(3), systolic.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadlock-free: %v\n", a.DeadlockFree)
	fmt.Println("labels:")
	fmt.Print(systolic.RenderLabels(p, a.Labeling))
	fmt.Printf("queues/link needed (dynamic compatible): %d\n\n", a.MinQueuesDynamic)

	// 2. Run under the compatible policy — Theorem 1 says this cannot
	//    deadlock.
	res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(systolic.RenderRun(p, res))

	// 3. Contrast: under-provision queues and assign them naively.
	bad, err := systolic.Execute(a, systolic.ExecOptions{
		Policy: systolic.NaiveLIFO, QueuesPerLink: 1, Capacity: 1, Force: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive LIFO, 1 queue/link: %s\n", bad.Outcome())
}
