// Parameter-sweep example: instead of proving one configuration safe,
// run the whole neighbourhood. The sweep engine fans every (policy ×
// queue budget × capacity × lookahead) combination for the paper's
// three queue-induced-deadlock programs (Figs 7–9) across a worker
// pool and reports which configurations deadlock and which Theorem 1
// budgets avoid it — the empirical version of the paper's Theorem 1.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"systolic"
)

func main() {
	f7 := systolic.Fig7Workload(systolic.Fig7Options{})
	f8 := systolic.Fig8Workload()
	f9 := systolic.Fig9Workload()
	cases := []systolic.SweepCase{
		{Name: "fig7", Program: f7.Program, Topology: f7.Topology},
		{Name: "fig8", Program: f8.Program, Topology: f8.Topology},
		{Name: "fig9", Program: f9.Program, Topology: f9.Topology},
	}
	axes := systolic.SweepAxes{
		Policies: []systolic.PolicyKind{
			systolic.NaiveFCFS, systolic.NaiveLIFO, systolic.NaiveRandom,
			systolic.NaiveAdversarial, systolic.StaticAssignment, systolic.DynamicCompatible,
		},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2},
		Lookaheads: []int{0, 2},
		Seed:       1,
	}
	fmt.Printf("== sweeping %d configurations over %d workers ==\n\n",
		axes.Size(len(cases)), runtime.GOMAXPROCS(0))

	start := time.Now()
	rep, err := systolic.Sweep(context.Background(), cases, axes, systolic.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Table())
	fmt.Printf("\n%d grid points, %d run-time deadlocks, %v wall clock\n",
		len(rep.Outcomes), len(rep.Deadlocked()), time.Since(start).Round(time.Millisecond))

	fmt.Println("\n== Theorem 1, read off the grid ==")
	for _, c := range cases {
		if q, ok := rep.SafeBudgets(systolic.DynamicCompatible)[c.Name]; ok {
			fmt.Printf("%s: compatible assignment is deadlock-free from %d queue(s)/link\n", c.Name, q)
		}
	}
}
