// Deadlock gallery: every failure mode the paper catalogues, run live —
// the deadlocked programs of Fig 5, the cyclic-but-fine program of
// Fig 6, and the three queue-induced deadlocks of Figs 7–9 under naive
// assignment, each followed by the avoidance strategy fixing it.
package main

import (
	"fmt"
	"log"

	"systolic"
)

func main() {
	gallery5()
	gallery6()
	gallery789()
}

func gallery5() {
	fmt.Println("== Fig 5: programs that are deadlocked at programming time ==")
	for _, w := range []*systolic.Workload{
		systolic.Fig5P1Workload(), systolic.Fig5P2Workload(), systolic.Fig5P3Workload(),
	} {
		fmt.Printf("\n%s (%s)\n", w.Name, w.Notes)
		fmt.Print(systolic.RenderProgram(w.Program))
		res := systolic.CrossOff(w.Program, systolic.CrossoffOptions{})
		fmt.Printf("strict verdict: deadlock-free=%v", res.DeadlockFree)
		if !res.DeadlockFree {
			fmt.Printf(" (%d ops never cross off)", res.RemainingOps)
		}
		fmt.Println()
		for _, budget := range []int{1, 2} {
			ok := systolic.IsDeadlockFreeWithLookahead(w.Program, budget)
			fmt.Printf("lookahead, %d-word queues: deadlock-free=%v\n", budget, ok)
		}
	}
}

func gallery6() {
	fmt.Println("\n== Fig 6: a message cycle is not a deadlock ==")
	w := systolic.Fig6Workload()
	fmt.Print(systolic.RenderProgram(w.Program))
	fmt.Printf("messages cycle C1→C2→C3→C4→C1, yet deadlock-free=%v\n",
		systolic.IsDeadlockFree(w.Program))
	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 1, Capacity: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runs to completion in %d cycles with one queue per link\n", res.Cycles)
}

func gallery789() {
	fmt.Println("\n== Figs 7–9: queue-induced deadlocks and their avoidance ==")
	cases := []struct {
		w      *systolic.Workload
		queues int
		bad    systolic.PolicyKind
		why    string
	}{
		{systolic.Fig7Workload(systolic.Fig7Options{}), 1, systolic.NaiveFCFS,
			"B must not get the C3–C4 queue before C (labels C=2 < B=3)"},
		{systolic.Fig8Workload(), 2, systolic.NaiveFCFS,
			"interleaved reads make A and B related: both need a queue on C2–C3 at once"},
		{systolic.Fig9Workload(), 2, systolic.NaiveFCFS,
			"interleaved writes make A and B related: both need a queue on C1–C2 at once"},
	}
	for _, tc := range cases {
		fmt.Printf("\n%s — %s\n", tc.w.Name, tc.why)
		a, err := systolic.Analyze(tc.w.Program, tc.w.Topology, systolic.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(systolic.RenderLabels(tc.w.Program, a.Labeling))

		// Under-provisioned + naive: the failure the figure depicts.
		bad, err := systolic.Execute(a, systolic.ExecOptions{
			Policy: tc.bad, QueuesPerLink: 1, Capacity: 1, Force: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("naive, 1 queue/link: %s\n", bad.Outcome())

		// Properly provisioned + compatible: Theorem 1.
		good, err := systolic.Execute(a, systolic.ExecOptions{
			QueuesPerLink: tc.queues, Capacity: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compatible, %d queue(s)/link: %s in %d cycles\n",
			tc.queues, good.Outcome(), good.Cycles)
	}
}
