// Sorting: odd-even transposition sort on a linear array. The
// "symmetric" exchange (both partners write before reading) is
// deadlocked under the strict crossing-off procedure and admitted by
// §8 lookahead once queues buffer a word — the Fig 5 P1 / Fig 10 story
// arising in a real algorithm.
package main

import (
	"flag"
	"fmt"
	"log"

	"systolic"
)

func main() {
	n := flag.Int("n", 8, "values to sort (one per cell)")
	flag.Parse()

	for _, symmetric := range []bool{false, true} {
		w, err := systolic.SortNetwork(systolic.SortOptions{N: *n, Symmetric: symmetric})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", w.Name)
		fmt.Printf("strict classification: deadlock-free=%v\n", systolic.IsDeadlockFree(w.Program))

		a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{
			Lookahead: symmetric, // the symmetric variant needs §8
			Capacity:  w.DefaultCapacity,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analysis (lookahead=%v): deadlock-free=%v, queues/link=%d\n",
			symmetric, a.DeadlockFree, a.MinQueuesDynamic)

		res, err := systolic.Execute(a, systolic.ExecOptions{
			Capacity: w.DefaultCapacity,
			Logic:    w.Logic,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(systolic.RenderRun(w.Program, res))
		if err := w.CheckReceived(res.Received); err != nil {
			log.Fatal(err)
		}
		fmt.Println("host received the values in sorted order ✓")
		fmt.Println()
	}
}
