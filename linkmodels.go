package systolic

import (
	"systolic/internal/linkmodel"
	"systolic/internal/verify"
)

// Link-timing models (see internal/linkmodel): a LinkModelPlan retimes
// the interconnect a run executes on — a uniform or per-link service
// delay, a word credit per service window, or congestion-sensitive
// backpressure — while the analysis stays the unit-latency Theorem 1
// story. Execute applies a plan via ExecOptions.LinkModel; LinkBudgets
// reports the model's worst-case stretch and which messages it
// touches. All shipped models are delay-only, so an analyzer-approved
// configuration still completes under any of them, merely later.
type (
	// LinkModelPlan retimes every link of one run. A nil plan, the
	// unit plan, and a delay-1 fixed plan are byte-identical to
	// unit-latency execution.
	LinkModelPlan = linkmodel.Plan
	// LinkOverride retimes a single link inside a fixed plan.
	LinkOverride = linkmodel.Override
	// LinkImpact reports one link-timing model's effect on Theorem 1's
	// guarantees (see LinkBudgets).
	LinkImpact = verify.LinkImpact
)

// ParseLinkModelSpec parses the comma-separated link-model grammar
// shared by the sysdl -link-model flag and the server wire format:
//
//	unit                                     unit-latency links (the default)
//	fixed[,delay=K][,credit=C]               uniform service delay / word credit
//	     [,link:IDX:delay=K][,link:IDX:credit=C]  per-link overrides
//	congestion[,delay=K][,threshold=T][,max=M][,credit=C]
//	                                         backpressure: +1 delay per T words
//	                                         over the threshold, capped at M
//
// Duplicate parameters and duplicate per-link overrides are parse
// errors. LinkModelPlan.String is the inverse (canonical form).
func ParseLinkModelSpec(spec string) (*LinkModelPlan, error) { return linkmodel.ParseSpec(spec) }

// UnitLinkModel returns the explicit unit-latency plan — useful to
// state "no retiming" in a table of configurations.
func UnitLinkModel() *LinkModelPlan { return linkmodel.UnitPlan() }

// FixedLinkModel returns a uniform fixed-timing plan: every link
// serves with the given delay, and credit > 0 bounds the words served
// per delay window (0 = unlimited).
func FixedLinkModel(delay, credit int) *LinkModelPlan { return linkmodel.FixedPlan(delay, credit) }

// CongestionLinkModel returns a congestion-sensitive plan: a link that
// moved w words in a cycle serves the next batch after
// delay + min(maxExtra, (w-1)/threshold) cycles.
func CongestionLinkModel(delay, threshold, maxExtra int) *LinkModelPlan {
	return linkmodel.CongestionPlan(delay, threshold, maxExtra)
}

// LinkBudgets evaluates a link-timing plan against an analyzed
// configuration: the worst-case schedule stretch, the messages whose
// routes the model retimes, and Theorem 1's queue budgets (which
// delay-only retiming carries over unchanged). A nil or unit plan
// yields nil.
func LinkBudgets(a *Analysis, plan *LinkModelPlan) *LinkImpact {
	return verify.LinkBudgets(a.Routes, a.Labeling.Dense, plan, len(a.Topology.Links()))
}
