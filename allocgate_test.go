package systolic_test

// Allocation gates for the compile-once execution core: CI fails when
// a change re-introduces per-run allocations that scale with program
// or array size. Budgets are ~3x the measured steady state (8–16
// allocs per Execute) so legitimate small additions don't flap the
// gate, while an O(cells) or O(messages) regression (hundreds to
// thousands of allocations) trips it immediately. The gates are
// skipped under the race detector, whose instrumentation changes
// allocation behavior.

import (
	"context"
	"testing"

	"systolic"
)

// allocGate asserts the steady-state allocations of one Execute call
// against a budget, after a warm-up run has populated the machine's
// execution pool.
func allocGate(t *testing.T, name string, budget float64, a *systolic.Analysis, opts systolic.ExecOptions) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under -race")
	}
	run := func() {
		res, err := systolic.Execute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal(res.Outcome())
		}
	}
	run() // warm the pooled exec scratch
	if got := testing.AllocsPerRun(10, run); got > budget {
		t.Errorf("%s: %v allocs per Execute, budget %v", name, got, budget)
	}
}

// TestAllocGateExecute gates the per-run allocation count of the
// compiled machine on a small analyzed workload.
func TestAllocGateExecute(t *testing.T) {
	w := systolic.Fig7Workload(systolic.Fig7Options{})
	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	allocGate(t, "fig7/compatible", 48, a, systolic.ExecOptions{QueuesPerLink: 2, Capacity: 1})
	allocGate(t, "fig7/naive-fcfs", 48, a, systolic.ExecOptions{
		Policy: systolic.NaiveFCFS, QueuesPerLink: 2, Capacity: 1, Force: true,
	})
}

// TestAllocGateExecuteScaleFree gates the property the ready-set
// scheduler exists for: per-run allocations must not scale with the
// array — a 1024-cell mostly-idle workload gets the same budget as an
// 8-cell one.
func TestAllocGateExecuteScaleFree(t *testing.T) {
	a := largeLinearWorkload(t, 1024, 4)
	allocGate(t, "large-linear-1024", 48, a, systolic.ExecOptions{Capacity: 2})
}

// TestAllocGateSweepBatch gates the column-batched sweep driver: on
// the benchmark grid (Figs 7–8 × 3 policies × 4 queue budgets × 3
// capacities × 2 lookaheads = 144 points) the whole sweep — per-column
// analyses included — must average at most 8 allocations per grid
// point. The batched driver's point is that a span's retained
// core.Runner replays its column without round-tripping scratch
// through the machine's pool; an O(cycles) or O(cells) per-point
// regression multiplies by 144 and trips this instantly (measured
// steady state: ~6.4 allocs/point).
func TestAllocGateSweepBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under -race")
	}
	f7 := systolic.Fig7Workload(systolic.Fig7Options{})
	f8 := systolic.Fig8Workload()
	cases := []systolic.SweepCase{
		{Name: "fig7", Program: f7.Program, Topology: f7.Topology},
		{Name: "fig8", Program: f8.Program, Topology: f8.Topology},
	}
	axes := systolic.SweepAxes{
		Policies:   []systolic.PolicyKind{systolic.NaiveFCFS, systolic.StaticAssignment, systolic.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2, 4},
		Lookaheads: []int{0, 2},
		Seed:       1,
	}
	points := axes.Size(len(cases))
	run := func() {
		rep, err := systolic.Sweep(context.Background(), cases, axes, systolic.SweepOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Outcomes) != points {
			t.Fatalf("report has %d outcomes, want %d", len(rep.Outcomes), points)
		}
	}
	run() // warm (nothing persists across sweeps today, but keep the gate's shape uniform)
	perPoint := testing.AllocsPerRun(5, run) / float64(points)
	if perPoint > 8 {
		t.Errorf("batched sweep: %.2f allocs per grid point, budget 8", perPoint)
	}
}

// TestAllocGateParallel gates the sharded runner's steady state: a
// 4-shard run on an all-active 256-cell wavefront may spend a fixed
// extra budget per run (the run-scoped gang — goroutines, two
// channels — plus shard bookkeeping) but must stay flat in both the
// array size and the cycle count; per-cycle sink traffic has to reuse
// pooled buffers. The budget is ~3x the measured steady state (~30),
// mirroring the single-threaded gates above.
func TestAllocGateParallel(t *testing.T) {
	a := wideLinearWorkload(t, 256, 4)
	allocGate(t, "wide-linear-256/workers=4", 96, a, systolic.ExecOptions{Capacity: 2, Workers: 4})
	// Same machine, single-threaded through the same sharded code
	// path: must hold the original budget, proving the refactor did
	// not tax the Workers=1 hot path with allocations.
	allocGate(t, "wide-linear-256/workers=1", 48, a, systolic.ExecOptions{Capacity: 2})
}
