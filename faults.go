package systolic

import (
	"systolic/internal/fault"
	"systolic/internal/gen"
	"systolic/internal/verify"
)

// Fault injection (see internal/fault): a FaultPlan degrades the
// array a run executes on — slowed or dead cells, throttled or
// severed links, each optionally taking effect from a given cycle —
// while the analysis stays the perfect-array Theorem 1 story.
// Execute applies a plan via ExecOptions.Faults; DegradedBudgets
// reports which queue guarantees survive each fault.
type (
	// FaultPlan is a set of faults applied to one run. The zero plan,
	// a nil plan, and an all-factor-1 plan are byte-identical to
	// running fault-free.
	FaultPlan = fault.Plan
	// CellFault degrades one cell (periodic slowdown or death).
	CellFault = fault.CellFault
	// LinkFault degrades one link (periodic throttle or severance).
	LinkFault = fault.LinkFault
	// FaultImpact reports one fault's effect on Theorem 1's
	// guarantees (see DegradedBudgets).
	FaultImpact = verify.FaultImpact
	// FaultOptions are the RandomFaultPlan knobs.
	FaultOptions = gen.FaultOptions
)

// Fault class names reported in FaultImpact.Class.
const (
	FaultClassSlowCell    = verify.ClassSlowCell
	FaultClassDeadCell    = verify.ClassDeadCell
	FaultClassSlowLink    = verify.ClassSlowLink
	FaultClassSeveredLink = verify.ClassSeveredLink
)

// ParseFaultSpec parses the comma-separated fault grammar shared by
// the sysdl -fault flag and the server wire format:
//
//	cell:IDX:slow=K[@FROM]   periodic cell slowdown, factor K
//	cell:IDX:dead[@FROM]     dead cell
//	link:IDX:slow=K[@FROM]   periodic link throttle, factor K
//	link:IDX:sever[@FROM]    severed link
//
// An empty spec returns a nil plan. FaultPlan.String is the inverse.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return fault.ParseSpec(spec) }

// RandomFaultPlan derives a valid, reproducible fault plan for an
// array with the given cell and link counts — the seeded plans the
// differential oracle's -faults mode uses.
func RandomFaultPlan(seed int64, numCells, numLinks int, opts FaultOptions) *FaultPlan {
	return gen.RandomFaults(seed, numCells, numLinks, opts)
}

// DegradedBudgets evaluates each fault of plan against an analyzed
// configuration: periodic faults only delay (the Theorem 1 guarantee
// and budgets survive unchanged), terminal faults remove progress
// (the affected-message closure is reported and the budgets are
// recomputed over the surviving traffic). The analysis must be
// deadlock-free; a nil or no-op plan yields no impacts.
func DegradedBudgets(a *Analysis, plan *FaultPlan) []FaultImpact {
	return verify.DegradedBudgets(a.Program, a.Routes, a.Labeling.Dense, plan)
}
