// Package systolic reproduces H. T. Kung's "Deadlock Avoidance for
// Systolic Communication" (Journal of Complexity 4, 1988) as a working
// library: the abstract program/queue model, the crossing-off
// deadlock-freedom test (with §8 lookahead), the §6 consistent message
// labeling scheme, the §7 static and dynamic compatible queue
// assignment policies, and a deterministic cycle-level simulator that
// demonstrates both the queue-induced deadlocks of §4 and their
// avoidance (Theorem 1).
//
// The typical pipeline:
//
//	p := systolic.NewProgram()               // build or systolic.ParseDSL(...)
//	a, err := systolic.Analyze(p.MustBuild(), systolic.LinearArray(4), systolic.AnalyzeOptions{})
//	res, err := systolic.Execute(a, systolic.ExecOptions{})
//
// Analyze classifies the program (deadlock-free or not), runs the
// labeling scheme, and computes how many queues per link Theorem 1
// requires; Execute simulates it under a queue-assignment policy.
package systolic

import (
	"systolic/internal/core"
	"systolic/internal/crossoff"
	"systolic/internal/dsl"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/rational"
	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/verify"
)

// Core model types (see internal/model).
type (
	// Program is a validated systolic program: message declarations
	// plus one R/W op sequence per cell.
	Program = model.Program
	// ProgramBuilder assembles a Program incrementally.
	ProgramBuilder = model.Builder
	// CellID identifies a cell; MessageID a declared message.
	CellID = model.CellID
	// MessageID identifies a declared message.
	MessageID = model.MessageID
	// Op is a single R(X) or W(X) statement.
	Op = model.Op
	// Message is a declared message (sender, receiver, word count).
	Message = model.Message
	// OpKind distinguishes reads from writes.
	OpKind = model.OpKind
)

// Read and Write are the two operation kinds of the model.
const (
	Read  = model.Read
	Write = model.Write
)

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder { return model.NewBuilder() }

// Topology types and constructors (see internal/topology).
type (
	// Topology connects cells with links and routes messages.
	Topology = topology.Topology
	// LinkID identifies an undirected link ("interval") between
	// adjacent cells.
	LinkID = topology.LinkID
	// Hop is one directed step of a message route.
	Hop = topology.Hop
)

// LinearArray returns a 1-D array of n cells, the paper's default
// setting.
func LinearArray(n int) Topology { return topology.Linear(n) }

// RingArray returns a ring of n cells with shorter-arc routing.
func RingArray(n int) Topology { return topology.Ring(n) }

// Mesh returns a rows×cols 2-D mesh with XY routing.
func Mesh(rows, cols int) Topology { return topology.Mesh2D(rows, cols) }

// Torus returns a rows×cols 2-D torus (mesh plus wraparound) with
// shorter-way dimension-ordered routing.
func Torus(rows, cols int) Topology { return topology.Torus2D(rows, cols) }

// HypercubeTopology returns a 2^dim-cell hypercube with e-cube
// routing — the Cosmic Cube topology the paper's introduction
// contrasts with.
func HypercubeTopology(dim int) Topology { return topology.Hypercube(dim) }

// StarTopology returns a hub-and-spoke topology with cell 0 as hub.
func StarTopology(n int) Topology { return topology.Star(n) }

// GraphTopology returns an arbitrary adjacency with BFS routing.
func GraphTopology(n int, edges [][2]CellID) Topology { return topology.Graph(n, edges) }

// Routes computes every message's route. Competing groups messages by
// shared link.
func Routes(p *Program, t Topology) ([][]Hop, error) { return topology.Routes(p, t) }

// Competing maps each link to the messages crossing it.
func Competing(routes [][]Hop) map[LinkID][]MessageID { return topology.Competing(routes) }

// Crossing-off (deadlock-freedom analysis, §3 and §8.1).
type (
	// CrossoffOptions configures the classifier (lookahead, budgets,
	// pair choice, observer).
	CrossoffOptions = crossoff.Options
	// CrossoffResult reports classification and the crossed order.
	CrossoffResult = crossoff.Result
	// CrossoffPair is one crossed executable pair.
	CrossoffPair = crossoff.Pair
	// CrossoffRound is one simultaneous step of the Fig 4 schedule.
	CrossoffRound = crossoff.Round
)

// IsDeadlockFree runs the strict crossing-off procedure (§3.2).
func IsDeadlockFree(p *Program) bool { return crossoff.Classify(p, crossoff.Options{}) }

// IsDeadlockFreeWithLookahead runs the §8.1 variant: only writes may
// be skipped (rule R1), at most budget skipped writes per message per
// located pair (rule R2).
func IsDeadlockFreeWithLookahead(p *Program, budget int) bool {
	return crossoff.Classify(p, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(budget)})
}

// CrossOff runs the procedure with full options and trace.
func CrossOff(p *Program, opts CrossoffOptions) CrossoffResult { return crossoff.Run(p, opts) }

// CrossOffSchedule returns the maximal simultaneous rounds (Fig 4).
func CrossOffSchedule(p *Program) ([]CrossoffRound, bool) { return crossoff.Schedule(p) }

// Labeling (§6).
type (
	// Labeling assigns every message an exact rational label plus a
	// dense integer rank.
	Labeling = label.Labeling
	// LabelOptions configures the §6 scheme.
	LabelOptions = label.Options
	// Rational is the exact label arithmetic type.
	Rational = rational.R
)

// AssignLabels runs the §6 consistent labeling scheme.
func AssignLabels(p *Program, opts LabelOptions) (Labeling, error) { return label.Assign(p, opts) }

// TrivialLabels labels every message 1 — always consistent, maximally
// stringent for assignment (§5).
func TrivialLabels(p *Program) Labeling { return label.Trivial(p) }

// CheckLabels verifies consistency: each cell touches messages in
// nondecreasing label order.
func CheckLabels(p *Program, l Labeling) error { return label.Check(p, l.ByMessage) }

// RelatedMessages computes the §6 related-message classes
// (interleaved reads or writes at a cell, closed transitively).
func RelatedMessages(p *Program) map[int][]int { return label.Related(p).Classes() }

// Engine pipeline (Analyze / Execute) and run-time types.
type (
	// Analysis is the compile-time artifact: classification, labels,
	// and queue requirements.
	Analysis = core.Analysis
	// AnalyzeOptions configures Analyze.
	AnalyzeOptions = core.AnalyzeOptions
	// ExecOptions configures Execute.
	ExecOptions = core.ExecOptions
	// PolicyKind selects a queue-assignment discipline.
	PolicyKind = core.PolicyKind
	// RunResult is a simulation outcome.
	RunResult = sim.Result
	// CellLogic supplies word values for semantic workloads.
	CellLogic = sim.CellLogic
	// Word is the transfer unit.
	Word = sim.Word
	// SimConfig exposes the raw simulator for advanced callers.
	SimConfig = sim.Config
)

// Queue-assignment policy kinds.
const (
	// DynamicCompatible is the §7.2 ordered + simultaneous policy.
	DynamicCompatible = core.DynamicCompatible
	// StaticAssignment is the §7.1 policy.
	StaticAssignment = core.StaticAssignment
	// NaiveFCFS grants queues in request order, ignoring labels.
	NaiveFCFS = core.NaiveFCFS
	// NaiveLIFO grants the most recent requester first.
	NaiveLIFO = core.NaiveLIFO
	// NaiveRandom grants in seeded-random order.
	NaiveRandom = core.NaiveRandom
	// NaiveAdversarial grants the largest label first.
	NaiveAdversarial = core.NaiveAdversarial
)

// ParsePolicyName maps a policy name ("compatible", "static", "fcfs",
// "lifo", "random", "adversarial", or a PolicyKind.String() form) to
// its PolicyKind — the spelling shared by the sysdl flags and the
// /v1/* wire format.
func ParsePolicyName(name string) (PolicyKind, error) { return core.ParsePolicy(name) }

// Analyze classifies and labels a program over a topology and computes
// Theorem 1's queue requirements.
func Analyze(p *Program, t Topology, opts AnalyzeOptions) (*Analysis, error) {
	return core.Analyze(p, t, opts)
}

// Execute simulates an analyzed program under a policy; with the
// default DynamicCompatible policy and Analyze-approved queue counts,
// Theorem 1 guarantees completion.
//
// Execution runs on a compiled machine (internal/machine) that is
// built once per Analysis and cached on it: the first Execute pays
// the compile, every later Execute on the same Analysis — any policy,
// queue budget, capacity, or logic — is pure simulation. That is what
// makes grid runs (Sweep, the differential oracle) cheap.
func Execute(a *Analysis, opts ExecOptions) (*RunResult, error) { return core.Execute(a, opts) }

// Precompile forces the analysis' execution machine to compile now
// instead of lazily on the first Execute — useful to front-load the
// cost before a latency-sensitive run loop, or to surface a
// compilation error early. Execute calls it implicitly.
func Precompile(a *Analysis) error {
	_, err := a.Machine()
	return err
}

// Simulate exposes the raw simulator for callers assembling their own
// policies.
func Simulate(p *Program, cfg SimConfig) (*RunResult, error) { return sim.Run(p, cfg) }

// PreconditionReport and CheckPreconditions expose Theorem 1's
// assumption (ii) directly.
type PreconditionReport = verify.PreconditionReport

// CheckPreconditions reports per-link queue requirements under a dense
// labeling.
func CheckPreconditions(p *Program, t Topology, dense []int, queuesPerLink int) (PreconditionReport, error) {
	return verify.CheckPreconditions(p, t, dense, queuesPerLink)
}

// Fix is a single-swap repair suggestion for a deadlocked program.
type Fix = verify.Fix

// SuggestFixes searches for adjacent-op swaps that make a deadlocked
// program deadlock-free (§9: deadlock-freedom is the programmer's or
// compiler's responsibility — this is the assistant half). DescribeFix
// renders one suggestion.
func SuggestFixes(p *Program, limit int) []Fix { return verify.SuggestFixes(p, limit) }

// DescribeFix renders a repair suggestion using program names.
func DescribeFix(p *Program, f Fix) string { return verify.DescribeFix(p, f) }

// ParseDSL parses the text notation (see internal/dsl for the
// grammar); FormatDSL is its inverse.
func ParseDSL(src string) (*Program, Topology, error) {
	f, err := dsl.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return f.Program, f.Topology, nil
}

// FormatDSL renders a program (and optional topology) as DSL text.
func FormatDSL(p *Program, t Topology) string { return dsl.Format(p, t) }
