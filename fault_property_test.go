// Property tests for the fault model's foundational identities:
// a fault-free plan is invisible (nil plan ≡ empty plan ≡ all-factor-1
// plan, byte for byte), and a dead cell's downstream starvation obeys
// a closed-form delivery bound on relay pipelines. The differential
// oracle checks the first identity statistically per run; these tests
// pin it as a standalone property over generated scenarios so a
// regression fails here with a seed, not inside a fuzz report.
package systolic_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"systolic"
)

// TestFaultFreePlanIsByteIdentical: for generated scenarios across
// topology families, Execute with a nil plan, an empty plan, and a
// plan slowing every cell and link by factor 1 (at assorted
// effective-from cycles) must return deep-equal results — the fault
// gates compile away entirely when no fault degrades anything.
func TestFaultFreePlanIsByteIdentical(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 25; seed++ {
		sc, err := systolic.GenerateProgram(seed, systolic.GenOptions{})
		if err != nil {
			continue
		}
		a, err := systolic.Analyze(sc.Program, sc.Topology, systolic.AnalyzeOptions{})
		if err != nil || !a.DeadlockFree {
			continue
		}
		noop := &systolic.FaultPlan{}
		for c := 0; c < sc.Program.NumCells(); c++ {
			noop.Cells = append(noop.Cells, systolic.CellFault{
				Cell: systolic.CellID(c), Factor: 1, From: c % 5,
			})
		}
		for l := range sc.Topology.Links() {
			noop.Links = append(noop.Links, systolic.LinkFault{
				Link: systolic.LinkID(l), Factor: 1, From: l % 3,
			})
		}
		if !noop.IsNoop() {
			t.Fatalf("seed %d: all-factor-1 plan not recognized as a no-op", seed)
		}
		var base *systolic.RunResult
		for i, plan := range []*systolic.FaultPlan{nil, {}, noop} {
			res, err := systolic.Execute(a, systolic.ExecOptions{Faults: plan})
			if err != nil {
				t.Fatalf("seed %d plan %d: %v", seed, i, err)
			}
			if res.Stats.GatedOps != 0 {
				t.Fatalf("seed %d plan %d: no-op plan gated %d ops", seed, i, res.Stats.GatedOps)
			}
			if len(res.Faults) != 0 {
				t.Fatalf("seed %d plan %d: no-op plan reported faults %v", seed, i, res.Faults)
			}
			if base == nil {
				base = res
			} else if !reflect.DeepEqual(base, res) {
				t.Fatalf("seed %d plan %d: fault-free plan changed the result\nbase: %+v\ngot:  %+v", seed, i, base, res)
			}
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("only %d scenarios checked; the property lost its coverage", checked)
	}
}

// relayPipelineDSL builds an n-cell linear relay: cell i reads a word
// of M(i-1) and forwards it as M(i), `words` words per message.
func relayPipelineDSL(n, words int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology linear %d\n", n)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "cell C%d\n", i)
	}
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "message M%d C%d C%d %d\n", i, i, i+1, words)
	}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "code C%d:", i)
		for w := 0; w < words; w++ {
			if i > 1 {
				fmt.Fprintf(&b, " R(M%d)", i-1)
			}
			if i < n {
				fmt.Fprintf(&b, " W(M%d)", i)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// TestDeadCellStallBound pins the closed-form starvation bound: on a
// relay pipeline at 1 queue/link and capacity 1, a cell dead from
// cycle 0 at index k limits message j (0-indexed, cell j → cell j+1)
// to exactly min(words, 2·(k−1−j)) delivered words for j < k−1, and
// zero from the dead cell onward — each upstream relay stage buys its
// predecessor exactly two more deliveries (one consumed, one parked
// in the single queue slot) before the stall freezes it. The
// degraded-budget analysis must agree that the guarantee is gone.
func TestDeadCellStallBound(t *testing.T) {
	for _, tc := range []struct{ n, words, dead int }{
		{4, 10, 2},
		{5, 6, 2},
		{5, 6, 3},
		{6, 4, 4},
		{7, 3, 3},
		{8, 5, 6},
	} {
		name := fmt.Sprintf("n=%d words=%d dead=%d", tc.n, tc.words, tc.dead)
		p, topo, err := systolic.ParseDSL(relayPipelineDSL(tc.n, tc.words))
		if err != nil {
			t.Fatal(err)
		}
		a, err := systolic.Analyze(p, topo, systolic.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := systolic.ParseFaultSpec(fmt.Sprintf("cell:%d:dead", tc.dead))
		if err != nil {
			t.Fatal(err)
		}
		res, err := systolic.Execute(a, systolic.ExecOptions{
			Faults: plan, QueuesPerLink: 1, Capacity: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deadlocked {
			t.Fatalf("%s: outcome %s, want deadlocked", name, res.Outcome())
		}
		for j := 0; j < p.NumMessages(); j++ {
			want := 0
			if j < tc.dead-1 {
				want = 2 * (tc.dead - 1 - j)
				if want > tc.words {
					want = tc.words
				}
			}
			if got := len(res.Received[systolic.MessageID(j)]); got != want {
				t.Errorf("%s: message %d delivered %d words, want %d", name, j, got, want)
			}
		}
		impacts := systolic.DegradedBudgets(a, plan)
		if len(impacts) != 1 {
			t.Fatalf("%s: %d impacts, want 1", name, len(impacts))
		}
		imp := impacts[0]
		if imp.Class != systolic.FaultClassDeadCell || imp.GuaranteeHolds {
			t.Errorf("%s: impact %+v, want dead-cell with the guarantee gone", name, imp)
		}
		if len(imp.AffectedMessages) == 0 {
			t.Errorf("%s: dead mid-pipeline cell affected no messages", name)
		}

		// Fault-free, the same pipeline completes at the same budget:
		// the starvation above is purely the fault's.
		ok, err := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 1, Capacity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !ok.Completed {
			t.Errorf("%s fault-free: %s, want completed", name, ok.Outcome())
		}
	}
}
