// Command sysvet runs the repository's static-analysis suite — the
// five analyzers in internal/lint that machine-check the contracts
// ARCHITECTURE.md states in prose: deterministic map iteration
// (detorder), Grant purity (grantpure), hot-path allocation budgets
// (hotalloc), context cancellation in blocking paths (ctxloop), and
// the package-doc floor (pkgdoc).
//
// Usage:
//
//	go run ./tools/sysvet ./...
//
// The exit code is 0 when the tree is clean, 1 on findings, and 2 on
// a load or type-check failure. See internal/lint for the
// //sysvet:ignore, //sysvet:unordered, and //sysvet:hotpath
// directives.
package main

import (
	"os"

	"systolic/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:]))
}
