// Command sweeprun is the reproducible experiment runner behind the
// paper's Figs 7–9 tables: it reads a grid configuration (JSON), runs
// the sweep through BOTH drivers — the column-batched driver and the
// per-point baseline (sweep.Options.PerPoint) — asserts the two
// reports are identical, and emits
//
//   - a deterministic CSV of every grid point (the artifact CI
//     archives; byte-identical for a given config and binary), and
//   - a small markdown timing table contrasting the drivers (wall
//     time is machine-dependent and informational — it is why the CSV,
//     not this table, is the reproducibility artifact).
//
// A report mismatch between the drivers is a correctness bug in the
// batched driver and exits non-zero, so every CI run of the committed
// smoke grid re-proves the batched/per-point equivalence on real
// workloads.
//
//	go run ./tools/sweeprun -config tools/sweeprun/testdata/smoke.json -csv sweep.csv
//
// Config shape (see testdata/smoke.json):
//
//	{
//	  "cases": [
//	    {"workload": "fig7"},
//	    {"workload": "fft", "topology": "hypercube"},
//	    {"gen": {"seed": 42, "mutations": 2, "cyclic": true}}
//	  ],
//	  "axes": {
//	    "policies": ["fcfs", "static", "compatible"],
//	    "queues": [0, 1, 2],
//	    "capacities": [1, 2],
//	    "lookaheads": [0, 2],
//	    "link_models": ["", "fixed,delay=3"],
//	    "seed": 1
//	  },
//	  "workers": 1,
//	  "max_cycles": 0
//	}
//
// Workload names are the built-in paper figures (fig3, fig5p1, fig5p2,
// fig5p3, fig6, fig7, fig8, fig9); "gen" derives a scenario from
// internal/gen's seeded generator instead. A case's optional
// "topology" re-homes the program on a named interconnect (mesh,
// torus2d, hypercube) sized to its cell count — the
// topology-sensitivity experiment (testdata/topology.json) runs one
// program across all three and compares cycle counts per CSV row.
// The optional "link_models" axis retimes the interconnect per grid
// point ("" = unit latency; see internal/linkmodel for the grammar).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"systolic/internal/core"
	"systolic/internal/gen"
	"systolic/internal/sweep"
	"systolic/internal/topology"
	"systolic/internal/workload"
)

// genSpec selects a generated scenario (internal/gen) as a case.
type genSpec struct {
	Seed      int64 `json:"seed"`
	Mutations int   `json:"mutations"`
	Cyclic    bool  `json:"cyclic"`
}

// caseSpec names one case: a built-in workload or a generated
// scenario. Exactly one of Workload/Gen must be set. Topology, when
// set, re-homes the program on a named interconnect sized to its cell
// count ("mesh", "torus2d", "hypercube") — the topology-sensitivity
// experiment runs one program as several cases differing only here,
// and the case name grows an "@topology" suffix so CSV rows compare
// cycle counts across interconnects.
type caseSpec struct {
	Workload string   `json:"workload,omitempty"`
	Gen      *genSpec `json:"gen,omitempty"`
	Topology string   `json:"topology,omitempty"`
}

// axesSpec is the JSON shape of sweep.Axes, with policies by name and
// link models in the shared spec grammar ("" = unit latency).
type axesSpec struct {
	Policies   []string `json:"policies"`
	Queues     []int    `json:"queues"`
	Capacities []int    `json:"capacities"`
	Lookaheads []int    `json:"lookaheads"`
	LinkModels []string `json:"link_models,omitempty"`
	Seed       int64    `json:"seed"`
}

// config is the grid configuration document.
type config struct {
	Cases     []caseSpec `json:"cases"`
	Axes      axesSpec   `json:"axes"`
	Workers   int        `json:"workers"`
	MaxCycles int        `json:"max_cycles"`
}

// loadConfig parses a config file.
func loadConfig(path string) (config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return config{}, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var cfg config
	if err := dec.Decode(&cfg); err != nil {
		return config{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(cfg.Cases) == 0 {
		return config{}, fmt.Errorf("%s: no cases", path)
	}
	return cfg, nil
}

// mustWorkload adapts an error-returning generator with fixed, known
// good sizes to the map's infallible signature.
func mustWorkload(w *workload.Workload, err error) func() *workload.Workload {
	if err != nil {
		panic(err)
	}
	return func() *workload.Workload { return w }
}

// builtinWorkloads maps config names to the paper-figure constructors
// and the operator-graph families at smoke-grid sizes.
var builtinWorkloads = map[string]func() *workload.Workload{
	"fig3":      workload.Fig3,
	"fig5p1":    workload.Fig5P1,
	"fig5p2":    workload.Fig5P2,
	"fig5p3":    workload.Fig5P3,
	"fig6":      workload.Fig6,
	"fig7":      func() *workload.Workload { return workload.Fig7(workload.Fig7Options{}) },
	"fig8":      workload.Fig8,
	"fig9":      workload.Fig9,
	"attention": mustWorkload(workload.Attention(workload.AttentionOptions{Tokens: 6, Experts: 3})),
	"stencil":   mustWorkload(workload.Stencil(workload.StencilOptions{Rows: 3, Cols: 3, Iters: 2})),
	"fft":       mustWorkload(workload.FFT(workload.FFTOptions{LogN: 3})),
	"sortnet":   mustWorkload(workload.PipelinedSort(workload.PipelinedSortOptions{Width: 8, Rounds: 4})),
}

// topologyFor resolves a named topology override sized to the
// program's cell count: "mesh" and "torus2d" use the most-square
// rows×cols factorization, "hypercube" requires a power-of-two count.
func topologyFor(name string, cells int) (topology.Topology, error) {
	switch name {
	case "mesh", "torus2d":
		r := 1
		for d := 1; d*d <= cells; d++ {
			if cells%d == 0 {
				r = d
			}
		}
		if name == "mesh" {
			return topology.Mesh2D(r, cells/r), nil
		}
		return topology.Torus2D(r, cells/r), nil
	case "hypercube":
		dim := 0
		for 1<<dim < cells {
			dim++
		}
		if 1<<dim != cells {
			return nil, fmt.Errorf("hypercube needs a power-of-two cell count, program has %d cells", cells)
		}
		return topology.Hypercube(dim), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want mesh, torus2d, or hypercube)", name)
	}
}

// buildCases resolves every case spec to a sweep case.
func buildCases(specs []caseSpec) ([]sweep.Case, error) {
	cases := make([]sweep.Case, 0, len(specs))
	for i, spec := range specs {
		var c sweep.Case
		switch {
		case spec.Workload != "" && spec.Gen == nil:
			mk, ok := builtinWorkloads[spec.Workload]
			if !ok {
				return nil, fmt.Errorf("case %d: unknown workload %q", i, spec.Workload)
			}
			w := mk()
			c = sweep.Case{Name: spec.Workload, Program: w.Program, Topology: w.Topology}
		case spec.Gen != nil && spec.Workload == "":
			sc, err := gen.Generate(spec.Gen.Seed, gen.Options{
				Mutations: spec.Gen.Mutations,
				Cyclic:    spec.Gen.Cyclic,
			})
			if err != nil {
				return nil, fmt.Errorf("case %d: %v", i, err)
			}
			c = sweep.Case{
				Name:     fmt.Sprintf("gen-%d", spec.Gen.Seed),
				Program:  sc.Program,
				Topology: sc.Topology,
			}
		default:
			return nil, fmt.Errorf("case %d: exactly one of \"workload\" or \"gen\" must be set", i)
		}
		if spec.Topology != "" {
			topo, err := topologyFor(spec.Topology, c.Program.NumCells())
			if err != nil {
				return nil, fmt.Errorf("case %d (%s): %v", i, c.Name, err)
			}
			c.Topology = topo
			c.Name += "@" + spec.Topology
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// buildAxes resolves the policy names.
func buildAxes(spec axesSpec) (sweep.Axes, error) {
	axes := sweep.Axes{
		Queues:     spec.Queues,
		Capacities: spec.Capacities,
		Lookaheads: spec.Lookaheads,
		LinkModels: spec.LinkModels,
		Seed:       spec.Seed,
	}
	for _, name := range spec.Policies {
		kind, err := core.ParsePolicy(name)
		if err != nil {
			return sweep.Axes{}, err
		}
		axes.Policies = append(axes.Policies, kind)
	}
	return axes, nil
}

// writeCSV renders a report as the deterministic experiment artifact:
// one row per grid point in enumeration order. queues is the resolved
// budget actually simulated (the requested budget for rejected or
// errored points, where auto never resolves).
func writeCSV(rep *sweep.Report) string {
	var b strings.Builder
	b.WriteString("case,policy,queues,capacity,lookahead,link_model,result,cycles,max_depth\n")
	for _, o := range rep.Outcomes {
		// Link-model specs use commas; the CSV cell swaps them for
		// semicolons so rows stay cut/awk-friendly without quoting.
		lm := strings.ReplaceAll(o.LinkModel, ",", ";")
		if lm == "" {
			lm = "unit"
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%s,%s,%d,%d\n",
			o.CaseName, o.Policy.String(), o.QueuesUsed, o.Capacity, o.Lookahead,
			lm, o.Result, o.Cycles, o.MaxQueueDepth)
	}
	return b.String()
}

// timings holds both drivers' wall-clock measurements.
type timings struct {
	points            int
	batched, perPoint time.Duration
}

// markdown renders the informational timing table.
func (t timings) markdown() string {
	var b strings.Builder
	b.WriteString("| driver | wall time | grid points | µs/point |\n")
	b.WriteString("|---|---|---|---|\n")
	row := func(name string, d time.Duration) {
		us := float64(d.Microseconds()) / float64(t.points)
		fmt.Fprintf(&b, "| %s | %s | %d | %.1f |\n", name, d.Round(time.Microsecond), t.points, us)
	}
	row("column-batched", t.batched)
	row("per-point", t.perPoint)
	return b.String()
}

// runBoth sweeps the grid through both drivers, timing each, and
// verifies the reports match. The batched report is the one returned.
func runBoth(ctx context.Context, cases []sweep.Case, axes sweep.Axes, cfg config) (*sweep.Report, timings, error) {
	opts := sweep.Options{Workers: cfg.Workers, MaxCycles: cfg.MaxCycles}

	start := time.Now()
	batched, err := sweep.Run(ctx, cases, axes, opts)
	if err != nil {
		return nil, timings{}, fmt.Errorf("batched sweep: %v", err)
	}
	tb := time.Since(start)

	opts.PerPoint = true
	start = time.Now()
	perPoint, err := sweep.Run(ctx, cases, axes, opts)
	if err != nil {
		return nil, timings{}, fmt.Errorf("per-point sweep: %v", err)
	}
	tp := time.Since(start)

	if !reflect.DeepEqual(batched, perPoint) {
		for i := range batched.Outcomes {
			if !reflect.DeepEqual(batched.Outcomes[i], perPoint.Outcomes[i]) {
				return nil, timings{}, fmt.Errorf("drivers disagree at grid point %d:\nbatched:   %+v\nper-point: %+v",
					i, batched.Outcomes[i], perPoint.Outcomes[i])
			}
		}
		return nil, timings{}, fmt.Errorf("drivers disagree outside the outcome list")
	}
	return batched, timings{points: len(batched.Outcomes), batched: tb, perPoint: tp}, nil
}

// writeOut writes data to path, or to stdout when path is "-".
func writeOut(path, data string) error {
	if path == "-" {
		_, err := os.Stdout.WriteString(data)
		return err
	}
	return os.WriteFile(path, []byte(data), 0o644)
}

func main() {
	configPath := flag.String("config", "", "grid configuration JSON (required)")
	csvPath := flag.String("csv", "-", "write the deterministic outcome CSV here (- = stdout)")
	mdPath := flag.String("md", "", "write the markdown timing table here (default: stderr)")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "sweeprun: -config is required")
		os.Exit(2)
	}

	cfg, err := loadConfig(*configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
	cases, err := buildCases(cfg.Cases)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
	axes, err := buildAxes(cfg.Axes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}

	rep, tm, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
	if err := writeOut(*csvPath, writeCSV(rep)); err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
	md := tm.markdown()
	if *mdPath == "" {
		fmt.Fprint(os.Stderr, md)
	} else if err := writeOut(*mdPath, md); err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweeprun: %d grid points, drivers agree\n", tm.points)
}
