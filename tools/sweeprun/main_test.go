package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"systolic/internal/core"
	"systolic/internal/sweep"
)

// TestSmokeConfigEndToEnd runs the committed CI smoke grid through
// both drivers and pins the CSV artifact's determinism: two runs of
// the same config produce byte-identical CSV, the drivers agree, and
// the CSV has exactly one row per grid point.
func TestSmokeConfigEndToEnd(t *testing.T) {
	cfg, err := loadConfig(filepath.Join("testdata", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases, err := buildCases(cfg.Cases)
	if err != nil {
		t.Fatal(err)
	}
	axes, err := buildAxes(cfg.Axes)
	if err != nil {
		t.Fatal(err)
	}
	rep, tm, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tm.points != axes.Size(len(cases)) {
		t.Fatalf("ran %d grid points, config spans %d", tm.points, axes.Size(len(cases)))
	}
	csv1 := writeCSV(rep)
	if got := strings.Count(csv1, "\n"); got != tm.points+1 {
		t.Fatalf("CSV has %d lines, want header + %d rows", got, tm.points)
	}
	rep2, _, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if csv2 := writeCSV(rep2); csv1 != csv2 {
		t.Fatal("two runs of the same config produced different CSV bytes")
	}
	if !strings.Contains(csv1, "deadlocked") {
		t.Error("smoke grid produced no deadlocks; it no longer exercises the interesting rows")
	}
	md := tm.markdown()
	for _, want := range []string{"column-batched", "per-point", "µs/point"} {
		if !strings.Contains(md, want) {
			t.Errorf("timing table missing %q:\n%s", want, md)
		}
	}
}

// TestCSVShape pins the artifact schema: the exact header the
// experiment pipeline greps, and resolved queue budgets in the rows.
func TestCSVShape(t *testing.T) {
	rep := &sweep.Report{Outcomes: []sweep.Outcome{{
		Config:     sweep.Config{Policy: core.DynamicCompatible, Capacity: 2, Lookahead: 2},
		CaseName:   "fig7",
		QueuesUsed: 3,
		Result:     "completed",
		Cycles:     41,
	}}}
	got := writeCSV(rep)
	want := "case,policy,queues,capacity,lookahead,result,cycles,max_depth\n" +
		"fig7,dynamic-compatible,3,2,2,completed,41,0\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

// TestBuildCasesValidation covers the config error paths.
func TestBuildCasesValidation(t *testing.T) {
	if _, err := buildCases([]caseSpec{{Workload: "not-a-figure"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildCases([]caseSpec{{}}); err == nil {
		t.Error("empty case spec accepted")
	}
	if _, err := buildCases([]caseSpec{{Workload: "fig7", Gen: &genSpec{Seed: 1}}}); err == nil {
		t.Error("ambiguous case spec accepted")
	}
	if _, err := buildAxes(axesSpec{Policies: []string{"not-a-policy"}}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestLoadConfigRejectsUnknownFields keeps configs honest: a typo'd
// key must fail loudly, not silently sweep a different grid.
func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"cases":[{"workload":"fig7"}],"axes":{"capacitys":[1]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(bad); err == nil {
		t.Error("config with unknown field accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"cases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(empty); err == nil {
		t.Error("config with no cases accepted")
	}
}
