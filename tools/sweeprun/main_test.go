package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"systolic/internal/core"
	"systolic/internal/sweep"
)

// TestSmokeConfigEndToEnd runs the committed CI smoke grid through
// both drivers and pins the CSV artifact's determinism: two runs of
// the same config produce byte-identical CSV, the drivers agree, and
// the CSV has exactly one row per grid point.
func TestSmokeConfigEndToEnd(t *testing.T) {
	cfg, err := loadConfig(filepath.Join("testdata", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases, err := buildCases(cfg.Cases)
	if err != nil {
		t.Fatal(err)
	}
	axes, err := buildAxes(cfg.Axes)
	if err != nil {
		t.Fatal(err)
	}
	rep, tm, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tm.points != axes.Size(len(cases)) {
		t.Fatalf("ran %d grid points, config spans %d", tm.points, axes.Size(len(cases)))
	}
	csv1 := writeCSV(rep)
	if got := strings.Count(csv1, "\n"); got != tm.points+1 {
		t.Fatalf("CSV has %d lines, want header + %d rows", got, tm.points)
	}
	rep2, _, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if csv2 := writeCSV(rep2); csv1 != csv2 {
		t.Fatal("two runs of the same config produced different CSV bytes")
	}
	if !strings.Contains(csv1, "deadlocked") {
		t.Error("smoke grid produced no deadlocks; it no longer exercises the interesting rows")
	}
	md := tm.markdown()
	for _, want := range []string{"column-batched", "per-point", "µs/point"} {
		if !strings.Contains(md, want) {
			t.Errorf("timing table missing %q:\n%s", want, md)
		}
	}
}

// TestCSVShape pins the artifact schema: the exact header the
// experiment pipeline greps, and resolved queue budgets in the rows.
func TestCSVShape(t *testing.T) {
	rep := &sweep.Report{Outcomes: []sweep.Outcome{{
		Config:     sweep.Config{Policy: core.DynamicCompatible, Capacity: 2, Lookahead: 2},
		CaseName:   "fig7",
		QueuesUsed: 3,
		Result:     "completed",
		Cycles:     41,
	}}}
	got := writeCSV(rep)
	want := "case,policy,queues,capacity,lookahead,link_model,result,cycles,max_depth\n" +
		"fig7,dynamic-compatible,3,2,2,unit,completed,41,0\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", got, want)
	}
	// Link-model specs swap commas for semicolons so the cell stays a
	// single cut-friendly CSV field.
	rep.Outcomes[0].LinkModel = "fixed,delay=3"
	if got := writeCSV(rep); !strings.Contains(got, ",fixed;delay=3,completed,") {
		t.Fatalf("retimed row not semicolonized:\n%q", got)
	}
}

// TestBuildCasesValidation covers the config error paths.
func TestBuildCasesValidation(t *testing.T) {
	if _, err := buildCases([]caseSpec{{Workload: "not-a-figure"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildCases([]caseSpec{{}}); err == nil {
		t.Error("empty case spec accepted")
	}
	if _, err := buildCases([]caseSpec{{Workload: "fig7", Gen: &genSpec{Seed: 1}}}); err == nil {
		t.Error("ambiguous case spec accepted")
	}
	if _, err := buildAxes(axesSpec{Policies: []string{"not-a-policy"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Topology overrides: unknown names fail, and hypercube demands a
	// power-of-two cell count (stencil is 3×3 = 9 cells).
	if _, err := buildCases([]caseSpec{{Workload: "fig7", Topology: "moebius"}}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := buildCases([]caseSpec{{Workload: "stencil", Topology: "hypercube"}}); err == nil {
		t.Error("hypercube over a 9-cell program accepted")
	}
}

// TestTopologyConfigEndToEnd runs the committed topology-sensitivity
// experiment: one FFT program re-homed on mesh, torus2d, and
// hypercube, swept across all three link-timing models. The CSV is
// byte-deterministic across runs (CI runs the binary twice and cmps),
// names every interconnect, and actually shows topology sensitivity —
// the same (policy, queues, link model) point must not cost the same
// number of cycles on every interconnect.
func TestTopologyConfigEndToEnd(t *testing.T) {
	cfg, err := loadConfig(filepath.Join("testdata", "topology.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases, err := buildCases(cfg.Cases)
	if err != nil {
		t.Fatal(err)
	}
	axes, err := buildAxes(cfg.Axes)
	if err != nil {
		t.Fatal(err)
	}
	rep, tm, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tm.points != axes.Size(len(cases)) {
		t.Fatalf("ran %d grid points, config spans %d", tm.points, axes.Size(len(cases)))
	}
	csv1 := writeCSV(rep)
	for _, want := range []string{"fft@mesh", "fft@torus2d", "fft@hypercube", "unit", "fixed;delay=3", "congestion;delay=1"} {
		if !strings.Contains(csv1, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
	rep2, _, err := runBoth(context.Background(), cases, axes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if csv2 := writeCSV(rep2); csv1 != csv2 {
		t.Fatal("two runs of the topology config produced different CSV bytes")
	}
	// Group cycle counts by everything except the case name: at least
	// one configuration must separate the interconnects.
	type key struct {
		policy            string
		queues, cap, look int
		linkModel, result string
	}
	byCfg := map[key]map[int]bool{}
	for _, o := range rep.Outcomes {
		k := key{o.Policy.String(), o.QueuesUsed, o.Capacity, o.Lookahead, o.LinkModel, o.Result}
		if byCfg[k] == nil {
			byCfg[k] = map[int]bool{}
		}
		byCfg[k][o.Cycles] = true
	}
	sensitive := false
	for _, cycles := range byCfg {
		if len(cycles) > 1 {
			sensitive = true
			break
		}
	}
	if !sensitive {
		t.Error("every interconnect cost the same cycles at every point; the experiment shows no topology sensitivity")
	}
}

// TestLoadConfigRejectsUnknownFields keeps configs honest: a typo'd
// key must fail loudly, not silently sweep a different grid.
func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"cases":[{"workload":"fig7"}],"axes":{"capacitys":[1]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(bad); err == nil {
		t.Error("config with unknown field accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"cases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(empty); err == nil {
		t.Error("config with no cases accepted")
	}
}
