package main

import "testing"

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkRunParallel/wide-linear-1024/workers=4-8  3  81334315 ns/op  26511 ns/sim-cycle  900 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkRunParallel/wide-linear-1024/workers=4-8" || e.Iterations != 3 {
		t.Fatalf("parsed %+v", e)
	}
	for unit, want := range map[string]float64{"ns/op": 81334315, "ns/sim-cycle": 26511, "allocs/op": 900} {
		if e.Metrics[unit] != want {
			t.Errorf("metric %s = %v, want %v", unit, e.Metrics[unit], want)
		}
	}
	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsystolic\t0.7s",
		"",
		"Benchmark only-name",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("non-benchmark line %q parsed", junk)
		}
	}
}
