package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkRunParallel/wide-linear-1024/workers=4-8  3  81334315 ns/op  26511 ns/sim-cycle  900 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkRunParallel/wide-linear-1024/workers=4-8" || e.Iterations != 3 {
		t.Fatalf("parsed %+v", e)
	}
	for unit, want := range map[string]float64{"ns/op": 81334315, "ns/sim-cycle": 26511, "allocs/op": 900} {
		if e.Metrics[unit] != want {
			t.Errorf("metric %s = %v, want %v", unit, e.Metrics[unit], want)
		}
	}
	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsystolic\t0.7s",
		"",
		"Benchmark only-name",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("non-benchmark line %q parsed", junk)
		}
	}
}

func doc(entries ...entry) document {
	return document{Version: docVersion, Benchmarks: entries}
}

func bench(name string, metrics map[string]float64) entry {
	return entry{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompare(t *testing.T) {
	base := doc(
		bench("BenchmarkA-8", map[string]float64{"ns/op": 100, "allocs/op": 10, "B/op": 1000}),
		bench("BenchmarkB-8", map[string]float64{"ns/op": 200, "allocs/op": 20}),
	)

	t.Run("identical is clean", func(t *testing.T) {
		if bad := compare(base, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("violations on identical docs: %v", bad)
		}
	})

	t.Run("within tolerance is clean", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-8", map[string]float64{"ns/op": 100, "allocs/op": 11, "B/op": 1100}),
			bench("BenchmarkB-8", map[string]float64{"ns/op": 200, "allocs/op": 22}),
		)
		if bad := compare(cur, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("violations within tolerance: %v", bad)
		}
	})

	t.Run("alloc regression is flagged", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-8", map[string]float64{"ns/op": 100, "allocs/op": 12, "B/op": 1000}),
			bench("BenchmarkB-8", map[string]float64{"ns/op": 200, "allocs/op": 20}),
		)
		bad := compare(cur, base, 0.10, 0)
		if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op regressed") {
			t.Errorf("want one allocs/op regression, got %v", bad)
		}
	})

	t.Run("timing noise is not compared", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-8", map[string]float64{"ns/op": 100000, "allocs/op": 10, "B/op": 1000}),
			bench("BenchmarkB-8", map[string]float64{"ns/op": 900000, "allocs/op": 20}),
		)
		if bad := compare(cur, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("timing-only change flagged: %v", bad)
		}
	})

	t.Run("missing benchmark is flagged", func(t *testing.T) {
		cur := doc(bench("BenchmarkA-8", map[string]float64{"allocs/op": 10, "B/op": 1000}))
		bad := compare(cur, base, 0.10, 0)
		if len(bad) != 1 || !strings.Contains(bad[0], "not in current run") {
			t.Errorf("want one missing-benchmark violation, got %v", bad)
		}
	})

	t.Run("missing metric is flagged", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-8", map[string]float64{"ns/op": 100}),
			bench("BenchmarkB-8", map[string]float64{"ns/op": 200, "allocs/op": 20}),
		)
		bad := compare(cur, base, 0.10, 0)
		if len(bad) != 2 {
			t.Errorf("want two missing-metric violations, got %v", bad)
		}
	})

	t.Run("gomaxprocs suffix is normalized", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-4", map[string]float64{"allocs/op": 10, "B/op": 1000}),
			bench("BenchmarkB-4", map[string]float64{"allocs/op": 20}),
		)
		if bad := compare(cur, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("suffix mismatch flagged: %v", bad)
		}
	})

	t.Run("extra benchmarks are fine", func(t *testing.T) {
		cur := doc(
			bench("BenchmarkA-8", map[string]float64{"allocs/op": 10, "B/op": 1000}),
			bench("BenchmarkB-8", map[string]float64{"allocs/op": 20}),
			bench("BenchmarkNew-8", map[string]float64{"allocs/op": 99999}),
		)
		if bad := compare(cur, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("new benchmark flagged: %v", bad)
		}
	})
}

// TestTimeTolerance covers the opt-in ns/sim-cycle gate: advisory at
// 0, generous-multiplier gating when set, ns/op never gated.
func TestTimeTolerance(t *testing.T) {
	base := doc(bench("BenchmarkRun-8", map[string]float64{
		"ns/op": 1000, "ns/sim-cycle": 100, "allocs/op": 10,
	}))

	t.Run("zero keeps timing advisory", func(t *testing.T) {
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/op": 9000, "ns/sim-cycle": 900, "allocs/op": 10,
		}))
		if bad := compare(cur, base, 0.10, 0); len(bad) != 0 {
			t.Errorf("timing gated without -time-tolerance: %v", bad)
		}
	})

	t.Run("within 1.5x is clean", func(t *testing.T) {
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/op": 1400, "ns/sim-cycle": 140, "allocs/op": 10,
		}))
		if bad := compare(cur, base, 0.10, 0.5); len(bad) != 0 {
			t.Errorf("in-tolerance timing flagged: %v", bad)
		}
	})

	t.Run("beyond 1.5x fails", func(t *testing.T) {
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/op": 1600, "ns/sim-cycle": 160, "allocs/op": 10,
		}))
		bad := compare(cur, base, 0.10, 0.5)
		if len(bad) != 1 || !strings.Contains(bad[0], "ns/sim-cycle regressed") {
			t.Errorf("want one ns/sim-cycle regression, got %v", bad)
		}
	})

	t.Run("ns/op is never gated", func(t *testing.T) {
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/op": 99000, "ns/sim-cycle": 100, "allocs/op": 10,
		}))
		if bad := compare(cur, base, 0.10, 0.5); len(bad) != 0 {
			t.Errorf("ns/op gated: %v", bad)
		}
	})

	t.Run("baseline without the metric is ignored", func(t *testing.T) {
		noTiming := doc(bench("BenchmarkRun-8", map[string]float64{"allocs/op": 10}))
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/sim-cycle": 9999, "allocs/op": 10,
		}))
		if bad := compare(cur, noTiming, 0.10, 0.5); len(bad) != 0 {
			t.Errorf("un-baselined timing flagged: %v", bad)
		}
	})

	t.Run("gated metric missing from current run is flagged", func(t *testing.T) {
		cur := doc(bench("BenchmarkRun-8", map[string]float64{
			"ns/op": 1000, "allocs/op": 10,
		}))
		bad := compare(cur, base, 0.10, 0.5)
		if len(bad) != 1 || !strings.Contains(bad[0], "ns/sim-cycle") {
			t.Errorf("want one missing ns/sim-cycle violation, got %v", bad)
		}
	})
}

func TestParseDocument(t *testing.T) {
	in := `goos: linux
BenchmarkRunParallel/w1-8   3   100 ns/op   10 allocs/op
PASS
`
	d, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != docVersion || len(d.Benchmarks) != 1 {
		t.Fatalf("parsed %+v", d)
	}
}
