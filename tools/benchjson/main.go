// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive
// benchmark trajectories (e.g. BENCH_parallel.json: ns/sim-cycle for
// the sharded runner, single-threaded vs 4 workers) without scraping
// logs. Each benchmark line becomes one entry with its iteration
// count and every reported metric, custom metrics included; non-bench
// lines are ignored. The output is deterministic for a given input.
//
//	go test -run '^$' -bench BenchmarkRunParallel -benchmem . | go run ./tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the emitted JSON shape.
type document struct {
	Benchmarks []entry `json:"benchmarks"`
}

// parseLine parses one "BenchmarkX-8  N  V unit  V unit ..." line;
// ok is false for anything that is not a benchmark result.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func main() {
	doc := document{Benchmarks: []entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
