// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive
// benchmark trajectories (e.g. BENCH_parallel.json: ns/sim-cycle for
// the sharded runner, single-threaded vs 4 workers) without scraping
// logs. Each benchmark line becomes one entry with its iteration
// count and every reported metric, custom metrics included; non-bench
// lines are ignored. The output is deterministic for a given input.
//
//	go test -run '^$' -bench BenchmarkRunParallel -benchmem . | go run ./tools/benchjson
//
// With -baseline FILE the current results are also compared against a
// committed baseline document: every baseline benchmark must still
// exist, and its machine-independent metrics (allocs/op, B/op) must
// not exceed the baseline by more than -tolerance (a fraction;
// default 0.10). Timing metrics are recorded but by default never
// compared — they measure the CI runner, not the code. The exception
// is opt-in: -time-tolerance FRACTION (> 0) additionally gates the
// per-simulated-work timing metric ns/sim-cycle, which divides out
// how much work the benchmark did and only moves with real per-cycle
// cost; a generous fraction (e.g. 0.5: fail only beyond 1.5× the
// baseline) keeps runner noise from flapping the gate while an
// order-of-magnitude regression still fails. ns/op stays advisory
// always. On regression the diff goes to stderr and the exit status
// is 1.
//
//	go test -bench BenchmarkRunParallel -benchmem . | go run ./tools/benchjson -baseline BENCH_parallel.json -time-tolerance 0.5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the emitted JSON shape. Version guards the schema so a
// committed baseline from a future incompatible format fails loudly
// instead of comparing garbage.
type document struct {
	Version    int     `json:"version"`
	Benchmarks []entry `json:"benchmarks"`
}

// docVersion is the current schema version.
const docVersion = 1

// comparedMetrics are the machine-independent metrics a baseline
// comparison checks. ns/op and custom timing metrics vary with the
// host and are excluded by design.
var comparedMetrics = [...]string{"allocs/op", "B/op"}

// timedMetrics are the per-simulated-work timing metrics gated only
// when -time-tolerance is set. Wall-clock ns/op is deliberately not
// here: it scales with the benchmark's workload size, while these
// divide the workload out and only move with real per-unit cost.
var timedMetrics = [...]string{"ns/sim-cycle"}

// parseLine parses one "BenchmarkX-8  N  V unit  V unit ..." line;
// ok is false for anything that is not a benchmark result.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// parse reads benchmark output into a document.
func parse(r io.Reader) (document, error) {
	doc := document{Version: docVersion, Benchmarks: []entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	return doc, sc.Err()
}

// normName strips the trailing -<GOMAXPROCS> suffix Go appends to
// benchmark names, so a baseline recorded on a 1-proc machine matches
// the same benchmark on a 4-proc CI runner.
func normName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// compare checks cur against base and returns one human-readable
// violation per regression: a baseline benchmark that disappeared, or
// a compared metric exceeding baseline*(1+tol). When timeTol > 0 the
// timed metrics (ns/sim-cycle) are additionally gated against
// baseline*(1+timeTol); 0 leaves timing advisory. Benchmarks only in
// cur are fine — coverage may grow freely. Names are matched with the
// GOMAXPROCS suffix stripped.
func compare(cur, base document, tol, timeTol float64) []string {
	curBy := make(map[string]entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		curBy[normName(e.Name)] = e
	}
	gate := func(bad []string, b, c entry, metrics []string, tol float64) []string {
		for _, m := range metrics {
			bv, inBase := b.Metrics[m]
			cv, inCur := c.Metrics[m]
			if !inBase {
				continue
			}
			if !inCur {
				bad = append(bad, fmt.Sprintf("%s: metric %s in baseline but not reported (run with -benchmem?)", b.Name, m))
				continue
			}
			if cv > bv*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s: %s regressed: %.0f > baseline %.0f (+%.0f%% allowed)", b.Name, m, cv, bv, tol*100))
			}
		}
		return bad
	}
	var bad []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[normName(b.Name)]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline but not in current run", b.Name))
			continue
		}
		bad = gate(bad, b, c, comparedMetrics[:], tol)
		if timeTol > 0 {
			bad = gate(bad, b, c, timedMetrics[:], timeTol)
		}
	}
	return bad
}

// loadBaseline reads and validates a committed baseline document.
func loadBaseline(path string) (document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return document{}, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Version != docVersion {
		return document{}, fmt.Errorf("%s: baseline schema version %d, this tool writes %d", path, doc.Version, docVersion)
	}
	return doc, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to compare allocation metrics against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional increase over baseline metrics")
	timeTolerance := flag.Float64("time-tolerance", 0, "when > 0, also gate ns/sim-cycle at baseline*(1+this); 0 keeps timing advisory")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if bad := compare(doc, base, *tolerance, *timeTolerance); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "benchjson:", b)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) against %s\n", len(bad), *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: OK against %s\n", *baseline)
}
