// Command doclint fails when any Go package in the repository lacks a
// package doc comment. CI runs it as `go run ./tools/doclint`; the
// same check also runs as a unit test in internal/doclint.
package main

import (
	"os"

	"systolic/internal/doclint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	os.Exit(doclint.Main(root))
}
