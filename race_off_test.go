//go:build !race

package systolic_test

// raceEnabled reports whether the race detector instruments this
// build; allocation gates skip themselves when it does.
const raceEnabled = false
