// Golden-trace regression tests for fault-induced deadlocks: a dead
// cell and a severed link each stall a relay that is deadlock-free by
// Theorem 1 on the perfect array. As with the Fig 8/9 goldens, the
// pins are exact — the deadlock cycle, the blocked-cell set (cell,
// op, op index, reason), the words delivered before the stall, and
// the gated-operation count — so any change to fault gating in either
// engine must be looked at, not waved through.
package systolic_test

import (
	"testing"

	"systolic"
)

// faultRelayDSL is a three-cell relay, deadlock-free on the perfect
// array at 1 queue/link.
const faultRelayDSL = `topology linear 3
cell C1
cell C2
cell C3
message A C1 C2 2
message B C2 C3 2
code C1: W(A) W(A)
code C2: R(A) W(B) R(A) W(B)
code C3: R(B) R(B)
`

func assertFaultDeadlockTrace(t *testing.T, spec string, wantCycle, wantGated int,
	wantBlocked []goldenBlock, wantReceived map[string][]systolic.Word) {
	t.Helper()
	p, topo, err := systolic.ParseDSL(faultRelayDSL)
	if err != nil {
		t.Fatal(err)
	}
	a, err := systolic.Analyze(p, topo, systolic.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := systolic.ParseFaultSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := systolic.Execute(a, systolic.ExecOptions{
		Faults: plan, QueuesPerLink: 1, Capacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("outcome = %s, want deadlocked", res.Outcome())
	}
	if res.Cycles != wantCycle {
		t.Errorf("deadlock cycle = %d, want %d", res.Cycles, wantCycle)
	}
	if res.Stats.GatedOps != wantGated {
		t.Errorf("gated ops = %d, want %d", res.Stats.GatedOps, wantGated)
	}
	if len(res.Faults) != 1 || res.Faults[0] != spec {
		t.Errorf("result echoes faults %v, want [%s]", res.Faults, spec)
	}
	if len(res.Blocked) != len(wantBlocked) {
		t.Fatalf("blocked set has %d cells, want %d: %+v", len(res.Blocked), len(wantBlocked), res.Blocked)
	}
	for i, want := range wantBlocked {
		got := res.Blocked[i]
		if got.Cell != want.cell {
			t.Errorf("blocked[%d].Cell = %d, want %d", i, got.Cell, want.cell)
		}
		if s := p.OpString(got.Op); s != want.op {
			t.Errorf("blocked[%d].Op = %s, want %s", i, s, want.op)
		}
		if got.OpIdx != want.opIdx {
			t.Errorf("blocked[%d].OpIdx = %d, want %d", i, got.OpIdx, want.opIdx)
		}
		if got.Reason != want.reason {
			t.Errorf("blocked[%d].Reason = %q, want %q", i, got.Reason, want.reason)
		}
	}
	for name, want := range wantReceived {
		m, ok := p.MessageByName(name)
		if !ok {
			t.Fatalf("no message %q", name)
		}
		got := res.Received[m.ID]
		if len(got) != len(want) {
			t.Errorf("received %s = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("received %s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}

	// The same analysis without the plan completes at the same budget —
	// the deadlock above is purely fault-induced.
	ok, err := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 1, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Completed {
		t.Errorf("fault-free run: %s, want completed", ok.Outcome())
	}
}

// TestGoldenDeadCellDeadlock: C2 dies at cycle 3, after relaying one
// word each way. Its second R(A) never issues, so C3 starves waiting
// for B's second word — the stall surfaces two cells downstream of
// the fault.
func TestGoldenDeadCellDeadlock(t *testing.T) {
	assertFaultDeadlockTrace(t, "cell:1:dead@3",
		4, 2,
		[]goldenBlock{
			{1, "R(A)", 2, "no word of A has arrived"},
			{2, "R(B)", 1, "no word of B has arrived"},
		},
		map[string][]systolic.Word{"A": {0}},
	)
}

// TestGoldenSeveredLinkDeadlock: the C2–C3 link severs at cycle 2
// with B's first word already queued but undeliverable — C2 jams on
// its full B queue, C3 never sees a word, and the deadlock is
// detected one cycle after the severance.
func TestGoldenSeveredLinkDeadlock(t *testing.T) {
	assertFaultDeadlockTrace(t, "link:1:sever@2",
		2, 1,
		[]goldenBlock{
			{1, "W(B)", 1, "queue for B is full (capacity 1) and the downstream never drains"},
			{2, "R(B)", 0, "no word of B has arrived"},
		},
		map[string][]systolic.Word{"A": {0}, "B": nil},
	)
}
