package systolic_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"systolic"
	"systolic/internal/assign"
)

func TestPublicPipelineOnFig2(t *testing.T) {
	w := systolic.Fig2Workload()
	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.DeadlockFree {
		t.Fatal("Fig 2 not deadlock-free")
	}
	res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2, Logic: w.Logic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run %s", res.Outcome())
	}
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatal(err)
	}
}

func TestPublicClassifiers(t *testing.T) {
	p1 := systolic.Fig5P1Workload().Program
	if systolic.IsDeadlockFree(p1) {
		t.Fatal("P1 strict-admitted")
	}
	if !systolic.IsDeadlockFreeWithLookahead(p1, 2) {
		t.Fatal("P1 rejected at budget 2")
	}
	rounds, free := systolic.CrossOffSchedule(systolic.Fig2Workload().Program)
	if !free || len(rounds) != 12 {
		t.Fatalf("schedule: free=%v rounds=%d", free, len(rounds))
	}
}

func TestPublicLabeling(t *testing.T) {
	p := systolic.Fig7Workload(systolic.Fig7Options{}).Program
	lab, err := systolic.AssignLabels(p, systolic.LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := systolic.CheckLabels(p, lab); err != nil {
		t.Fatal(err)
	}
	triv := systolic.TrivialLabels(p)
	if err := systolic.CheckLabels(p, triv); err != nil {
		t.Fatal(err)
	}
	classes := systolic.RelatedMessages(systolic.Fig8Workload().Program)
	foundPair := false
	for _, members := range classes {
		if len(members) == 2 {
			foundPair = true
		}
	}
	if !foundPair {
		t.Fatal("Fig 8 related class missing")
	}
}

func TestPublicTopologiesAndRoutes(t *testing.T) {
	w := systolic.Fig7Workload(systolic.Fig7Options{})
	routes, err := systolic.Routes(w.Program, w.Topology)
	if err != nil {
		t.Fatal(err)
	}
	comp := systolic.Competing(routes)
	if len(comp) == 0 {
		t.Fatal("no competing sets")
	}
	for _, topo := range []systolic.Topology{
		systolic.LinearArray(4), systolic.RingArray(5), systolic.Mesh(2, 3),
		systolic.GraphTopology(3, [][2]systolic.CellID{{0, 1}, {1, 2}}),
	} {
		if topo.NumCells() < 3 {
			t.Fatalf("%s too small", topo.Name())
		}
	}
}

func TestPublicDSLRoundTrip(t *testing.T) {
	p := systolic.Fig6Workload().Program
	src := systolic.FormatDSL(p, systolic.RingArray(4))
	q, topo, err := systolic.ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumMessages() != p.NumMessages() || topo.Name() != "ring(4)" {
		t.Fatal("DSL round trip lost structure")
	}
}

func TestPublicPreconditions(t *testing.T) {
	w := systolic.Fig8Workload()
	lab, err := systolic.AssignLabels(w.Program, systolic.LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := systolic.CheckPreconditions(w.Program, w.Topology, lab.Dense, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxGroup != 2 || len(rep.Violations) == 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestPublicSimulateRaw(t *testing.T) {
	b := systolic.NewProgram()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 3)
	b.WriteN(c1, a, 3)
	b.ReadN(c2, a, 3)
	p := b.MustBuild()
	lab := systolic.TrivialLabels(p)
	res, err := systolic.Simulate(p, systolic.SimConfig{
		Topology:      systolic.LinearArray(2),
		QueuesPerLink: 1,
		Capacity:      1,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run %s", res.Outcome())
	}
}

func TestMemModelPublic(t *testing.T) {
	rows, err := systolic.MemModelTable(systolic.MemModelDefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Fatalf("systolic slower than mem-to-mem: %v", r)
		}
	}
}

func TestRenderersPublic(t *testing.T) {
	w := systolic.Fig2Workload()
	if !strings.Contains(systolic.RenderProgram(w.Program), "W(XA)") {
		t.Fatal("RenderProgram empty")
	}
	seqs, err := systolic.RenderQueueSequences(w.Program, w.Topology)
	if err != nil || !strings.Contains(seqs, "Host→C1") {
		t.Fatalf("RenderQueueSequences: %v\n%s", err, seqs)
	}
}

// ExampleIsDeadlockFree demonstrates the §3 classifier on the paper's
// P3: a circular read-before-write that no amount of buffering fixes.
func ExampleIsDeadlockFree() {
	b := systolic.NewProgram()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Read(c1, bb).Write(c1, a) // C1: R(B) W(A)
	b.Read(c2, a).Write(c2, bb) // C2: R(A) W(B)
	p := b.MustBuild()
	fmt.Println("strict:", systolic.IsDeadlockFree(p))
	fmt.Println("with lookahead:", systolic.IsDeadlockFreeWithLookahead(p, 8))
	// Output:
	// strict: false
	// with lookahead: false
}

// ExampleAnalyze runs the full avoidance pipeline on Fig 7 and shows
// the paper's labels.
func ExampleAnalyze() {
	w := systolic.Fig7Workload(systolic.Fig7Options{})
	a, _ := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{})
	for _, name := range []string{"A", "C", "B"} {
		m, _ := w.Program.MessageByName(name)
		fmt.Printf("%s=%d ", name, a.Labeling.Dense[m.ID])
	}
	res, _ := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 1})
	fmt.Println(res.Outcome())
	// Output:
	// A=1 C=2 B=3 completed
}

// TestSweepFacade is the acceptance check for the public sweep API: a
// grid of ≥ 100 configurations produces the same report with 1 worker
// and with runtime.NumCPU() workers.
func TestSweepFacade(t *testing.T) {
	f7 := systolic.Fig7Workload(systolic.Fig7Options{})
	f8 := systolic.Fig8Workload()
	cases := []systolic.SweepCase{
		{Name: "fig7", Program: f7.Program, Topology: f7.Topology},
		{Name: "fig8", Program: f8.Program, Topology: f8.Topology},
	}
	axes := systolic.SweepAxes{
		Policies:   []systolic.PolicyKind{systolic.NaiveFCFS, systolic.NaiveRandom, systolic.StaticAssignment, systolic.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2},
		Lookaheads: []int{0, 2},
		Seed:       3,
	}
	if n := axes.Size(len(cases)); n < 100 {
		t.Fatalf("grid has %d configurations, want ≥ 100", n)
	}
	seq, err := systolic.Sweep(context.Background(), cases, axes, systolic.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := systolic.Sweep(context.Background(), cases, axes, systolic.SweepOptions{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("1-worker and NumCPU-worker sweep reports differ")
	}
	if seq.Table() != par.Table() {
		t.Fatal("rendered sweep tables differ across worker counts")
	}
}
