package systolic

import (
	"context"

	"systolic/internal/sweep"
)

// Parameter-sweep engine (see internal/sweep): run a whole grid of
// (program × topology × policy × queue budget × capacity × lookahead)
// configurations across a bounded worker pool and read off which ones
// deadlock and which Theorem 1 budgets avoid it.
type (
	// SweepCase is one named (program, topology) pair under sweep.
	SweepCase = sweep.Case
	// SweepAxes spans the configuration grid.
	SweepAxes = sweep.Axes
	// SweepOptions bounds the worker pool and per-run cycle budget.
	SweepOptions = sweep.Options
	// SweepConfig is one grid point.
	SweepConfig = sweep.Config
	// SweepOutcome is one grid point's result.
	SweepOutcome = sweep.Outcome
	// SweepReport is the order-stable result of a sweep; identical
	// for any worker count.
	SweepReport = sweep.Report
)

// DefaultSweepAxes contrasts naive FCFS with the paper's policies over
// small queue, capacity, and lookahead budgets.
func DefaultSweepAxes() SweepAxes { return sweep.DefaultAxes() }

// Sweep fans the grid over cases across a bounded worker pool.
// Cancelling ctx abandons unstarted grid points and returns ctx.Err().
func Sweep(ctx context.Context, cases []SweepCase, axes SweepAxes, opts SweepOptions) (*SweepReport, error) {
	return sweep.Run(ctx, cases, axes, opts)
}
